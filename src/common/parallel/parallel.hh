/**
 * @file
 * Deterministic parallel execution primitives for embarrassingly
 * parallel sweeps.
 *
 * Every figure/table reproduction evaluates a grid of independent
 * configurations (architectures x loads x knobs); classic parallel-DES
 * work (Fujimoto's survey) observes that independent replications are
 * the highest-leverage parallelism for such studies, because each
 * replication stays a plain sequential simulation.  These helpers run
 * a task set on a small fixed-size thread pool with two invariants
 * that make parallelism invisible to the results:
 *
 *  - results land by input index, never by completion order, so any
 *    downstream rendering sees the same sequence as a serial run; and
 *  - jobs <= 1 is a true serial fallback (no threads are created and
 *    tasks run inline on the caller's thread), so `--jobs 1` is
 *    byte-for-byte the pre-parallel behavior.
 *
 * Tasks must not touch shared mutable state; per-task randomness
 * derives from deriveSeed(base, index) so a task's stream depends
 * only on its index, not on which worker ran it.
 */

#ifndef HSIPC_COMMON_PARALLEL_HH
#define HSIPC_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hsipc::parallel
{

/**
 * Derive a statistically independent 64-bit seed for task @p index
 * from @p base.  SplitMix64 applied to base + index * golden-gamma:
 * the same finalizer the Rng uses for state expansion, so derived
 * seeds are well-mixed even for consecutive indices, and the mapping
 * is a pure function — the anchor of run-order independence.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t index);

/** Jobs to use when the user asks for "all cores": >= 1 always. */
int defaultJobs();

/**
 * A fixed-size pool of worker threads draining one task queue.
 * Submitted tasks run in submission order (each on whichever worker
 * frees up first); wait() blocks until the queue is empty and every
 * worker is idle.  The destructor waits, then joins.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return static_cast<int>(workers.size()); }

    /** Enqueue @p task; it may start immediately on another thread. */
    void submit(std::function<void()> task);

    /** Block until all submitted tasks have finished. */
    void wait();

  private:
    void workerLoop();

    std::mutex mutex;
    std::condition_variable taskReady; //!< workers: queue non-empty/stop
    std::condition_variable allIdle;   //!< wait(): queue drained
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    int active = 0; //!< tasks currently executing
    bool stopping = false;
};

/**
 * Run body(0..count-1) on up to @p jobs workers.  Indices are claimed
 * in order from a shared counter, so early indices start first, but
 * no completion-order guarantee exists — write results into
 * index-addressed slots.  jobs <= 1 (or count <= 1) runs inline with
 * no thread machinery at all.  The first exception a body throws is
 * rethrown on the caller's thread after all workers stop.
 */
void parallelFor(int jobs, std::size_t count,
                 const std::function<void(std::size_t)> &body);

/**
 * Evaluate @p tasks and return their results in input order,
 * regardless of completion order.  T must be default-constructible
 * and movable.
 */
template <typename T>
std::vector<T>
runAll(int jobs, const std::vector<std::function<T()>> &tasks)
{
    std::vector<T> results(tasks.size());
    parallelFor(jobs, tasks.size(),
                [&](std::size_t i) { results[i] = tasks[i](); });
    return results;
}

} // namespace hsipc::parallel

#endif // HSIPC_COMMON_PARALLEL_HH
