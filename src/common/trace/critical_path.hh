/**
 * @file
 * Causal message-lifecycle recording and critical-path latency
 * decomposition.
 *
 * The thesis' chapter-6 argument is that round-trip latency is capped
 * by whichever resource saturates first; flat per-resource spans (see
 * tracer.hh) show *that* a resource is busy, but not *whose* time it
 * is.  A CausalLog closes that gap: instrumented components append
 * typed intervals — service, queueing, network transit, blocked on a
 * remote rendezvous — tagged with the lifetime id of the message they
 * serve.  Because one message does exactly one thing at a time, its
 * intervals form a chain (the critical path of that round trip), and
 * decompose() turns the chains into an exact accounting:
 *
 *  - per message, a gapless partition of [start, done) into path
 *    segments whose durations sum to the measured round-trip time
 *    *exactly* (gap-filling attributes any unrecorded wait as
 *    queueing on the resource the message was waiting for);
 *  - in aggregate, mean/p50/p95/p99 of every component, the mean
 *    service and queueing microseconds per resource, and the
 *    bottleneck — the resource carrying the largest critical-path
 *    share.
 *
 * Recording is pay-for-use and strictly observational: a disabled log
 * rejects appends with one branch, draws no randomness, and schedules
 * nothing, so enabling it cannot perturb simulation results.
 */

#ifndef HSIPC_COMMON_TRACE_CRITICAL_PATH_HH
#define HSIPC_COMMON_TRACE_CRITICAL_PATH_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/obs/trace_sample.hh"
#include "common/time.hh"

namespace hsipc::trace
{

/** What a message's time was spent on during one path segment. */
enum class Component : std::uint8_t
{
    Service, //!< a resource actively working on the message
    Queue,   //!< waiting for a busy resource to become available
    Network, //!< in transit on the medium (incl. protocol recovery)
    Blocked, //!< at a rendezvous, waiting for a remote peer
};

/** Stable lower-case name of a component (for tables and JSON). */
const char *componentName(Component c);

/** One typed, message-attributed interval reported by a component. */
struct PathInterval
{
    Component comp = Component::Service;
    Tick begin = 0;
    Tick end = 0;
    std::string resource; //!< track-style name, e.g. "n0.mp"
};

/**
 * Collects the causal intervals of every in-flight message.  Users
 * call start() when a message's round trip begins, interval() from
 * each resource that serves (or queues, or carries) it, and done()
 * when the round trip completes.  Intervals must be reported in
 * causal order and may not overlap — a message does one thing at a
 * time.
 */
class CausalLog
{
  public:
    /**
     * How a message's life ended.  Only Completed records enter the
     * aggregate decomposition; the others are terminal causal events
     * of the RPC robustness layer (a shed, expired, superseded, or
     * crash-lost attempt never completed a round trip, so its partial
     * path must not dilute the round-trip statistics).
     */
    enum class Terminal : std::uint8_t
    {
        Completed,  //!< done() was called: a measured round trip
        Superseded, //!< a client retry replaced this attempt
        Shed,       //!< terminated by admission control
        Expired,    //!< terminated at its deadline
        LostToCrash, //!< flushed from a crashed node's queue
    };

    /** A message's lifetime and its recorded intervals. */
    struct Record
    {
        Tick start = -1;
        Tick end = -1; //!< -1 while the round trip is in flight
        Terminal terminal = Terminal::Completed;
        std::vector<PathInterval> intervals;
    };

    bool enabled() const { return on; }
    void setEnabled(bool e) { on = e; }

    /**
     * Record only the message ids @p s keeps.  The decision is per
     * id and consistent across every call, so a sampled message's
     * causal chain stays complete — its start, every interval, and
     * its terminal all survive — while unsampled ids cost one hash
     * per call and no memory.
     */
    void setSampler(const obs::TraceSampler &s) { sampler = s; }

    void start(long msg, Tick t);
    void interval(long msg, const std::string &resource, Component c,
                  Tick begin, Tick end);
    void done(long msg, Tick t);

    /**
     * Close @p msg's record without a completed round trip: the
     * message reached the terminal state @p why at @p t.  Intervals
     * reported after an abort (a server still working on a superseded
     * attempt) are retained for the record but never aggregated.
     */
    void abort(long msg, Tick t, Terminal why);

    const std::map<long, Record> &records() const { return log; }

  private:
    bool on = false;
    obs::TraceSampler sampler; //!< default: keep every id
    std::map<long, Record> log;
};

/** One segment of a reconstructed critical path. */
struct PathSegment
{
    Component comp = Component::Service;
    Tick begin = 0;
    Tick end = 0;
    std::string resource;
};

/**
 * One message's reconstructed critical path: a gapless partition of
 * [start, end) whose segment durations sum to the round trip exactly.
 */
struct MessagePath
{
    long msg = 0;
    Tick start = 0;
    Tick end = 0;
    std::vector<PathSegment> segments;
    double roundTripUs = 0;
    double serviceUs = 0;
    double queueUs = 0;
    double networkUs = 0;
    double blockedUs = 0;
    std::map<std::string, double> serviceUsByResource;
    std::map<std::string, double> queueUsByResource;
};

/**
 * Rebuild the critical path of one completed message.  Gaps between
 * recorded intervals become queueing on the next interval's resource:
 * the only unrecorded waits are those spent in a resource's entry
 * queue before it knew about the message.
 */
MessagePath reconstructPath(long msg, const CausalLog::Record &rec);

/** Mean and order statistics of one latency component, microseconds. */
struct ComponentStats
{
    double meanUs = 0;
    double p50Us = 0;
    double p95Us = 0;
    double p99Us = 0;

    friend bool operator==(const ComponentStats &,
                           const ComponentStats &) = default;
};

/**
 * Aggregate critical-path decomposition over a set of completed
 * messages.  roundTrip = service + queue + network + blocked holds
 * for the means by construction (each message's partition is exact).
 */
struct Decomposition
{
    long messages = 0;
    ComponentStats roundTrip;
    ComponentStats service;
    ComponentStats queue;
    ComponentStats network;
    ComponentStats blocked;
    //! Mean microseconds per message each resource contributed.  The
    //! medium's transit time appears here as its service, so the sum
    //! over serviceUsByResource is service.meanUs + network.meanUs.
    std::map<std::string, double> serviceUsByResource;
    std::map<std::string, double> queueUsByResource;
    //! Resource with the largest mean critical-path share (service +
    //! queue; the network's transit time counts as its service).
    std::string bottleneck;
    //! That share as a fraction of the mean round trip.
    double bottleneckShare = 0;

    friend bool operator==(const Decomposition &,
                           const Decomposition &) = default;
};

/**
 * Decompose every message whose round trip completed in (@p from,
 * @p to] — the same window the simulator uses for measured round
 * trips.  Aborted records (Terminal other than Completed) are
 * excluded: they are partial paths, not round trips.
 */
Decomposition decompose(const CausalLog &log, Tick from, Tick to);

} // namespace hsipc::trace

#endif // HSIPC_COMMON_TRACE_CRITICAL_PATH_HH
