/**
 * @file
 * Structured event tracing for the simulators.
 *
 * The thesis' methodology lives and dies by *where time goes*: §3.3
 * instruments a kernel to break a round trip into activities, and
 * chapter 6 attributes throughput differences to contention on
 * specific resources.  A Tracer makes the same attribution possible
 * for every simulated run: components record typed events — spans of
 * busy time and instantaneous occurrences — against named tracks (one
 * per simulated resource: each host CPU, MP, bus partition, DMA
 * engine, network channel), stamped with simulated time.
 *
 * The recorded timeline serves two consumers:
 *
 *  - chromeJson() emits Chrome trace_event JSON, loadable in Perfetto
 *    or chrome://tracing, with one "thread" per track;
 *  - busyByTrack()/busyByName() fold the spans into per-resource
 *    utilization and per-activity time breakdowns — the simulator's
 *    own Table-3-style profile, computed from its execution rather
 *    than from the synthetic profiling harness.
 *
 * Tracing is strictly pay-for-use: a disabled Tracer (the default)
 * rejects every record with a single branch and allocates nothing, so
 * instrumented components cost one pointer test per event when no
 * trace was requested.  Recording draws no randomness and schedules
 * no events, so enabling it cannot perturb simulation results.
 *
 * Consecutive spans on one track that share a name and abut in time
 * are merged on insertion: an uncontended kernel activity whose CPU
 * chunks and memory accesses are charged piecewise collapses to a
 * single span, and only genuine gaps (bus stalls, preemption) split
 * it.  This keeps traces compact without losing any busy/idle edge.
 */

#ifndef HSIPC_COMMON_TRACE_TRACER_HH
#define HSIPC_COMMON_TRACE_TRACER_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/obs/trace_sample.hh"
#include "common/time.hh"

namespace hsipc::trace
{

/** Event kinds, a subset of the Chrome trace_event phases. */
enum class Phase : std::uint8_t
{
    Complete,   //!< a span [start, start + duration) of busy time
    Instant,    //!< a point occurrence (drop, timeout, crash, ...)
    Counter,    //!< a sampled value (queue depth, window occupancy)
    FlowStart,  //!< first step of a causal flow ("s")
    FlowStep,   //!< intermediate step of a causal flow ("t")
    FlowEnd,    //!< terminating step of a causal flow ("f")
    AsyncBegin, //!< start of an async lifetime span ("b")
    AsyncEnd,   //!< end of an async lifetime span ("e")
};

/** One recorded event. */
struct Event
{
    Phase phase = Phase::Instant;
    int track = 0;
    Tick start = 0;
    Tick duration = 0; //!< Complete only
    double value = 0;  //!< Counter only
    //! Correlation id (0 = none).  On Complete/Instant events it tags
    //! the span with the message it serves; on flow/async events it is
    //! the Chrome event id that scopes the arrow or lifetime pair.
    long id = 0;
    std::string name;
    const char *category = ""; //!< static string, never owned
};

/** Records typed events against named per-resource tracks. */
class Tracer
{
  public:
    bool enabled() const { return on; }
    void setEnabled(bool e) { on = e; }

    /**
     * Keep per-message flow and async events only for the ids @p s
     * samples.  Complete spans and counters are never dropped —
     * utilization and windowed rates must stay whole-population —
     * so sampling bounds exactly the per-message O(messages) event
     * classes.  The decision is a pure function of (seed, id),
     * matching the CausalLog's, so a sampled message keeps its whole
     * arrow chain.
     */
    void setMessageSampler(const obs::TraceSampler &s)
    {
        msgSampler = s;
    }

    /**
     * Register (or look up) the track named @p name and return its
     * id.  Track ids are assigned in registration order, so a fixed
     * registration sequence yields a stable trace layout.
     */
    int track(const std::string &name);

    /**
     * Record a busy span; merges with an abutting same-name span.
     * Spans carrying different @p id values never merge, so the
     * per-message timeline stays separable even when one message's
     * work abuts the next one's on the same resource.
     */
    void complete(int track, const std::string &name, Tick start,
                  Tick duration, const char *category = "activity",
                  long id = 0);

    /** Record a point occurrence (optionally tagged with a msg id). */
    void instant(int track, const std::string &name, Tick ts,
                 const char *category = "event", long id = 0);

    /**
     * Record one step of causal flow @p id at @p ts on @p track.  The
     * first step of an id emits a Chrome flow-start ("s"); subsequent
     * steps emit flow-steps ("t"), so Perfetto draws an arrow chain
     * through the enclosing slices.  @p ts must lie inside a Complete
     * span on @p track for the arrow to bind.
     */
    void flowStep(int track, const std::string &name, Tick ts, long id);

    /**
     * Terminate causal flow @p id ("f", binding to the enclosing
     * slice) and retire the id so a later reuse starts a new chain.
     */
    void flowEnd(int track, const std::string &name, Tick ts, long id);

    /** Begin an async lifetime span scoped by (@p category, @p id). */
    void asyncBegin(int track, const std::string &name, Tick ts,
                    long id, const char *category = "msg");

    /** End the async lifetime span scoped by (@p category, @p id). */
    void asyncEnd(int track, const std::string &name, Tick ts, long id,
                  const char *category = "msg");

    /** Record a sampled value (rendered as a counter track). */
    void counter(int track, const std::string &name, Tick ts,
                 double value);

    const std::vector<Event> &events() const { return log; }
    const std::vector<std::string> &trackNames() const { return tracks; }

    /**
     * Render the Chrome trace_event JSON document: thread_name
     * metadata for every track (in id order) followed by the events
     * in recording order.  Timestamps are microseconds of simulated
     * time.
     */
    std::string chromeJson() const;

    /** Write chromeJson() to @p path (fatal on I/O failure). */
    void writeChromeJson(const std::string &path) const;

    /**
     * Busy ticks per track: Complete spans clipped to
     * [from, to).  Dividing by (to - from) gives the per-resource
     * utilization over that window.
     */
    std::map<std::string, Tick> busyByTrack(Tick from, Tick to) const;

    /**
     * Busy ticks per span name clipped to [from, to) — the
     * per-activity time breakdown across all tracks.
     */
    std::map<std::string, Tick> busyByName(Tick from, Tick to) const;

  private:
    void push(Phase phase, int track, const std::string &name, Tick ts,
              long id, const char *category);

    bool on = false;
    obs::TraceSampler msgSampler; //!< default: keep every id
    std::vector<std::string> tracks;
    std::map<std::string, int> trackIds;
    std::vector<Event> log;
    //! Index into @c log of the last Complete span per track, or -1;
    //! only that span is a merge candidate.
    std::vector<long> lastSpan;
    //! Flow ids that already emitted their "s" step.
    std::set<long> openFlows;
};

} // namespace hsipc::trace

#endif // HSIPC_COMMON_TRACE_TRACER_HH
