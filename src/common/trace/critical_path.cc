#include "common/trace/critical_path.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsipc::trace
{

const char *
componentName(Component c)
{
    switch (c) {
      case Component::Service: return "service";
      case Component::Queue: return "queue";
      case Component::Network: return "network";
      case Component::Blocked: return "blocked";
    }
    hsipc_panic("bad Component");
}

void
CausalLog::start(long msg, Tick t)
{
    if (!on || !sampler.sampled(msg))
        return;
    Record &r = log[msg];
    hsipc_assert(r.start < 0 && "message id reused");
    r.start = t;
}

void
CausalLog::interval(long msg, const std::string &resource, Component c,
                    Tick begin, Tick end)
{
    if (!on || !sampler.sampled(msg))
        return;
    if (end <= begin)
        return; // zero-length charges carry no time to attribute
    auto it = log.find(msg);
    hsipc_assert(it != log.end() && "interval for an unstarted message");
    PathInterval iv;
    iv.comp = c;
    iv.begin = begin;
    iv.end = end;
    iv.resource = resource;
    it->second.intervals.push_back(std::move(iv));
}

void
CausalLog::done(long msg, Tick t)
{
    if (!on || !sampler.sampled(msg))
        return;
    auto it = log.find(msg);
    hsipc_assert(it != log.end() && "done for an unstarted message");
    hsipc_assert(it->second.end < 0 && "message completed twice");
    it->second.end = t;
}

void
CausalLog::abort(long msg, Tick t, Terminal why)
{
    if (!on || !sampler.sampled(msg))
        return;
    hsipc_assert(why != Terminal::Completed &&
                 "abort cannot complete a message; use done()");
    auto it = log.find(msg);
    hsipc_assert(it != log.end() && "abort for an unstarted message");
    hsipc_assert(it->second.end < 0 && "message already closed");
    it->second.end = t;
    it->second.terminal = why;
}

MessagePath
reconstructPath(long msg, const CausalLog::Record &rec)
{
    hsipc_assert(rec.start >= 0 && rec.end >= rec.start);
    MessagePath path;
    path.msg = msg;
    path.start = rec.start;
    path.end = rec.end;
    path.roundTripUs = ticksToUs(rec.end - rec.start);

    auto segment = [&](Component c, Tick b, Tick e,
                       const std::string &res) {
        if (e <= b)
            return;
        PathSegment s;
        s.comp = c;
        s.begin = b;
        s.end = e;
        s.resource = res;
        path.segments.push_back(std::move(s));
        const double us = ticksToUs(e - b);
        switch (c) {
          case Component::Service:
            path.serviceUs += us;
            path.serviceUsByResource[res] += us;
            break;
          case Component::Queue:
            path.queueUs += us;
            path.queueUsByResource[res] += us;
            break;
          case Component::Network:
            path.networkUs += us;
            // Transit time is the medium's service, so the network
            // competes for the bottleneck like any other resource.
            path.serviceUsByResource[res] += us;
            break;
          case Component::Blocked:
            path.blockedUs += us;
            break;
        }
    };

    // The intervals arrive in causal order (a message does one thing
    // at a time); walk them, turning each gap into queueing on the
    // next interval's resource — the message was sitting in that
    // resource's entry queue.  Everything is clamped to the record's
    // end: with the RPC robustness layer a chain can keep reporting
    // after its message closed (a duplicate's server-side processing
    // outliving the reply that completed the request), and such time
    // belongs to nobody's round trip.
    Tick cursor = rec.start;
    for (const PathInterval &iv : rec.intervals) {
        hsipc_assert(iv.begin >= cursor &&
                     "overlapping causal intervals");
        if (cursor >= rec.end)
            break; // reported after the record closed
        segment(Component::Queue, cursor,
                std::min(iv.begin, rec.end), iv.resource);
        segment(iv.comp, iv.begin, std::min(iv.end, rec.end),
                iv.resource);
        cursor = iv.end;
    }
    // A trailing gap (none is expected from the simulator, whose last
    // activity completes at done-time) stays visible as blocked time
    // rather than silently vanishing from the accounting.
    segment(Component::Blocked, std::min(cursor, rec.end), rec.end,
            "unattributed");
    return path;
}

namespace
{

ComponentStats
stats(std::vector<double> &samples)
{
    ComponentStats s;
    if (samples.empty())
        return s;
    double sum = 0;
    for (double v : samples)
        sum += v;
    s.meanUs = sum / static_cast<double>(samples.size());
    std::sort(samples.begin(), samples.end());
    const std::size_t n = samples.size();
    // Same convention as the simulator's rtP50/rtP95.
    s.p50Us = samples[n / 2];
    s.p95Us = samples[std::min(n - 1, (n * 95) / 100)];
    s.p99Us = samples[std::min(n - 1, (n * 99) / 100)];
    return s;
}

} // namespace

Decomposition
decompose(const CausalLog &log, Tick from, Tick to)
{
    Decomposition d;
    std::vector<double> rt, service, queue, network, blocked;
    for (const auto &[msg, rec] : log.records()) {
        if (rec.end < 0 || rec.end <= from || rec.end > to ||
            rec.terminal != CausalLog::Terminal::Completed)
            continue;
        const MessagePath p = reconstructPath(msg, rec);
        ++d.messages;
        rt.push_back(p.roundTripUs);
        service.push_back(p.serviceUs);
        queue.push_back(p.queueUs);
        network.push_back(p.networkUs);
        blocked.push_back(p.blockedUs);
        for (const auto &[res, us] : p.serviceUsByResource)
            d.serviceUsByResource[res] += us;
        for (const auto &[res, us] : p.queueUsByResource)
            d.queueUsByResource[res] += us;
    }
    if (d.messages == 0)
        return d;
    const double n = static_cast<double>(d.messages);
    for (auto &[res, us] : d.serviceUsByResource)
        us /= n;
    for (auto &[res, us] : d.queueUsByResource)
        us /= n;
    d.roundTrip = stats(rt);
    d.service = stats(service);
    d.queue = stats(queue);
    d.network = stats(network);
    d.blocked = stats(blocked);

    // The bottleneck is the resource carrying the largest share of
    // the mean critical path, counting both its service and the
    // queueing it imposed.
    std::map<std::string, double> share = d.serviceUsByResource;
    for (const auto &[res, us] : d.queueUsByResource)
        share[res] += us;
    for (const auto &[res, us] : share) {
        if (us > d.bottleneckShare * d.roundTrip.meanUs) {
            d.bottleneck = res;
            d.bottleneckShare = d.roundTrip.meanUs > 0
                ? us / d.roundTrip.meanUs
                : 0;
        }
    }
    return d;
}

} // namespace hsipc::trace
