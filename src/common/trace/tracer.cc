#include "common/trace/tracer.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace hsipc::trace
{

int
Tracer::track(const std::string &name)
{
    auto it = trackIds.find(name);
    if (it != trackIds.end())
        return it->second;
    const int id = static_cast<int>(tracks.size());
    tracks.push_back(name);
    trackIds.emplace(name, id);
    lastSpan.push_back(-1);
    return id;
}

void
Tracer::complete(int track, const std::string &name, Tick start,
                 Tick duration, const char *category, long id)
{
    if (!on)
        return;
    hsipc_assert(track >= 0 &&
                 track < static_cast<int>(tracks.size()));
    hsipc_assert(duration >= 0);
    const std::size_t t = static_cast<std::size_t>(track);
    const long last = lastSpan[t];
    if (last >= 0) {
        Event &prev = log[static_cast<std::size_t>(last)];
        // Never merge across message ids: two messages' work abutting
        // on one resource must stay two spans, or the per-message
        // timeline (and any flow arrow bound to it) is lost.
        if (prev.start + prev.duration == start && prev.name == name &&
            prev.id == id) {
            prev.duration += duration;
            return;
        }
    }
    Event ev;
    ev.phase = Phase::Complete;
    ev.track = track;
    ev.start = start;
    ev.duration = duration;
    ev.id = id;
    ev.name = name;
    ev.category = category;
    lastSpan[t] = static_cast<long>(log.size());
    log.push_back(std::move(ev));
}

void
Tracer::push(Phase phase, int track, const std::string &name, Tick ts,
             long id, const char *category)
{
    hsipc_assert(track >= 0 &&
                 track < static_cast<int>(tracks.size()));
    Event ev;
    ev.phase = phase;
    ev.track = track;
    ev.start = ts;
    ev.id = id;
    ev.name = name;
    ev.category = category;
    log.push_back(std::move(ev));
}

void
Tracer::instant(int track, const std::string &name, Tick ts,
                const char *category, long id)
{
    if (!on)
        return;
    push(Phase::Instant, track, name, ts, id, category);
}

void
Tracer::flowStep(int track, const std::string &name, Tick ts, long id)
{
    if (!on || (id != 0 && !msgSampler.sampled(id)))
        return;
    const bool fresh = openFlows.insert(id).second;
    push(fresh ? Phase::FlowStart : Phase::FlowStep, track, name, ts,
         id, "flow");
}

void
Tracer::flowEnd(int track, const std::string &name, Tick ts, long id)
{
    if (!on || (id != 0 && !msgSampler.sampled(id)))
        return;
    // A flow that never started has nothing to terminate.
    if (openFlows.erase(id) == 0)
        return;
    push(Phase::FlowEnd, track, name, ts, id, "flow");
}

void
Tracer::asyncBegin(int track, const std::string &name, Tick ts,
                   long id, const char *category)
{
    if (!on || (id != 0 && !msgSampler.sampled(id)))
        return;
    push(Phase::AsyncBegin, track, name, ts, id, category);
}

void
Tracer::asyncEnd(int track, const std::string &name, Tick ts, long id,
                 const char *category)
{
    if (!on || (id != 0 && !msgSampler.sampled(id)))
        return;
    push(Phase::AsyncEnd, track, name, ts, id, category);
}

void
Tracer::counter(int track, const std::string &name, Tick ts,
                double value)
{
    if (!on)
        return;
    hsipc_assert(track >= 0 &&
                 track < static_cast<int>(tracks.size()));
    Event ev;
    ev.phase = Phase::Counter;
    ev.track = track;
    ev.start = ts;
    ev.value = value;
    ev.name = name;
    ev.category = "counter";
    log.push_back(std::move(ev));
}

namespace
{

/** Chrome trace ts/dur are microseconds; ticks are nanoseconds. */
std::string
tsUs(Tick t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(t) / static_cast<double>(tickUs));
    return buf;
}

} // namespace

std::string
Tracer::chromeJson() const
{
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            out << ",";
        first = false;
        out << "\n";
    };

    // One simulated "thread" per track, named after its resource.
    for (std::size_t t = 0; t < tracks.size(); ++t) {
        sep();
        out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t
            << ",\"name\":\"thread_name\",\"args\":{\"name\":"
            << jsonString(tracks[t]) << "}}";
    }

    // The "args":{"msg":N} tag on spans and instants keys them to the
    // message they serve; flow ("s"/"t"/"f") and async ("b"/"e")
    // events carry the same number as their Chrome event id, which is
    // what scopes arrow chains and lifetime pairs.
    long ev_id = 0;
    auto msgArg = [&]() {
        out << ",\"args\":{\"msg\":" << ev_id << "}";
    };
    for (const Event &ev : log) {
        sep();
        ev_id = ev.id;
        switch (ev.phase) {
          case Phase::Complete:
            out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.track
                << ",\"ts\":" << tsUs(ev.start)
                << ",\"dur\":" << tsUs(ev.duration)
                << ",\"name\":" << jsonString(ev.name)
                << ",\"cat\":\"" << ev.category << "\"";
            if (ev.id != 0)
                msgArg();
            out << "}";
            break;
          case Phase::Instant:
            out << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << ev.track
                << ",\"ts\":" << tsUs(ev.start)
                << ",\"name\":" << jsonString(ev.name)
                << ",\"cat\":\"" << ev.category
                << "\",\"s\":\"t\"";
            if (ev.id != 0)
                msgArg();
            out << "}";
            break;
          case Phase::Counter:
            out << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << ev.track
                << ",\"ts\":" << tsUs(ev.start)
                << ",\"name\":" << jsonString(ev.name)
                << ",\"args\":{\"value\":" << jsonNumber(ev.value)
                << "}}";
            break;
          case Phase::FlowStart:
          case Phase::FlowStep:
          case Phase::FlowEnd:
            out << "{\"ph\":\""
                << (ev.phase == Phase::FlowStart  ? 's'
                    : ev.phase == Phase::FlowStep ? 't'
                                                  : 'f')
                << "\",\"pid\":1,\"tid\":" << ev.track
                << ",\"ts\":" << tsUs(ev.start)
                << ",\"id\":" << ev.id
                << ",\"name\":" << jsonString(ev.name)
                << ",\"cat\":\"" << ev.category << "\"";
            // Bind the terminating step to its enclosing slice, not
            // the next one to begin.
            if (ev.phase == Phase::FlowEnd)
                out << ",\"bp\":\"e\"";
            out << "}";
            break;
          case Phase::AsyncBegin:
          case Phase::AsyncEnd:
            out << "{\"ph\":\""
                << (ev.phase == Phase::AsyncBegin ? 'b' : 'e')
                << "\",\"pid\":1,\"tid\":" << ev.track
                << ",\"ts\":" << tsUs(ev.start)
                << ",\"id\":" << ev.id
                << ",\"name\":" << jsonString(ev.name)
                << ",\"cat\":\"" << ev.category << "\"}";
            break;
        }
    }
    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out.str();
}

void
Tracer::writeChromeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        hsipc_fatal("cannot open trace file " + path);
    const std::string doc = chromeJson();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

std::map<std::string, Tick>
Tracer::busyByTrack(Tick from, Tick to) const
{
    std::map<std::string, Tick> busy;
    for (const Event &ev : log) {
        if (ev.phase != Phase::Complete)
            continue;
        const Tick lo = std::max(ev.start, from);
        const Tick hi = std::min(ev.start + ev.duration, to);
        if (hi > lo)
            busy[tracks[static_cast<std::size_t>(ev.track)]] +=
                hi - lo;
    }
    return busy;
}

std::map<std::string, Tick>
Tracer::busyByName(Tick from, Tick to) const
{
    std::map<std::string, Tick> busy;
    for (const Event &ev : log) {
        if (ev.phase != Phase::Complete)
            continue;
        const Tick lo = std::max(ev.start, from);
        const Tick hi = std::min(ev.start + ev.duration, to);
        if (hi > lo)
            busy[ev.name] += hi - lo;
    }
    return busy;
}

} // namespace hsipc::trace
