#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace hsipc
{

std::string
TextTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::render() const
{
    const std::size_t cols = headerRow.size();
    std::vector<std::size_t> width(cols, 0);
    for (std::size_t c = 0; c < cols; ++c)
        width[c] = headerRow[c].size();
    for (const auto &r : rows) {
        hsipc_assert(r.size() == cols);
        for (std::size_t c = 0; c < cols; ++c)
            width[c] = std::max(width[c], r[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &r,
                          std::ostringstream &out) {
        out << "|";
        for (std::size_t c = 0; c < cols; ++c) {
            out << " " << r[c]
                << std::string(width[c] - r[c].size(), ' ') << " |";
        }
        out << "\n";
    };

    std::ostringstream out;
    out << "== " << title << " ==\n";
    if (cols == 0)
        return out.str();

    std::size_t total = 1;
    for (std::size_t c = 0; c < cols; ++c)
        total += width[c] + 3;
    const std::string rule(total, '-');

    out << rule << "\n";
    render_row(headerRow, out);
    out << rule << "\n";
    for (const auto &r : rows)
        render_row(r, out);
    out << rule << "\n";
    return out.str();
}

std::string
TextTable::renderCsv() const
{
    auto cell = [](const std::string &v) {
        if (v.find_first_of(",\"\n") == std::string::npos)
            return v;
        std::string out = "\"";
        for (char c : v) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << ',';
            out << cell(row[c]);
        }
        out << '\n';
    };
    emit(headerRow);
    for (const auto &r : rows)
        emit(r);
    return out.str();
}

std::string
TextTable::renderJson() const
{
    std::ostringstream out;
    auto cells = [&](const std::vector<std::string> &row) {
        out << "[";
        for (std::size_t c = 0; c < row.size(); ++c)
            out << (c ? ", " : "") << jsonString(row[c]);
        out << "]";
    };
    out << "{\"title\": " << jsonString(title) << ", \"columns\": ";
    cells(headerRow);
    out << ", \"rows\": [";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        out << (r ? "," : "") << "\n    ";
        cells(rows[r]);
    }
    out << (rows.empty() ? "" : "\n  ") << "]}";
    return out.str();
}

} // namespace hsipc
