/**
 * @file
 * Shared output harness for the bench binaries.
 *
 * Every bench regenerates one of the thesis' tables or figures as
 * human-readable text; this helper additionally captures each emitted
 * table (and any named scalars) and, when the binary was invoked with
 * `--json <path>`, writes them as one machine-readable JSON document —
 * the feed for the BENCH_*.json trajectory files.
 *
 * Usage pattern:
 *
 *     int main(int argc, char **argv) {
 *         bench::init(argc, argv, "table5_bus");
 *         ...
 *         bench::emit(t);            // printf + record a TextTable
 *         bench::note("ratio", 1.7); // record a headline scalar
 *         return bench::finish();    // write --json file if requested
 *     }
 *
 * The JSON schema is
 * {"bench": name, "tables": [TextTable::renderJson()...],
 *  "scalars": {name: value}}.
 */

#ifndef HSIPC_COMMON_BENCH_MAIN_HH
#define HSIPC_COMMON_BENCH_MAIN_HH

#include <string>

#include "common/table.hh"

namespace hsipc::bench
{

/**
 * Parse the command line (recognizing `--json <path>`) and name the
 * run.  Unknown arguments are fatal, so a typo cannot silently yield
 * a half-configured run.
 */
void init(int argc, char **argv, const std::string &benchName);

/** Print @p t to stdout and record it for the JSON document. */
void emit(const TextTable &t);

/**
 * Record @p t for the JSON document without printing — for benches
 * that interleave a table's render() with surrounding commentary.
 */
void record(const TextTable &t);

/** Record a named scalar result for the JSON document. */
void note(const std::string &name, double value);

/**
 * Write the JSON file when `--json` was given; returns the process
 * exit status (0).
 */
int finish();

} // namespace hsipc::bench

#endif // HSIPC_COMMON_BENCH_MAIN_HH
