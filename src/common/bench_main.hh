/**
 * @file
 * Shared output harness for the bench binaries.
 *
 * Every bench regenerates one of the thesis' tables or figures as
 * human-readable text; this helper additionally captures each emitted
 * table (and any named scalars) and, when the binary was invoked with
 * `--json <path>`, writes them as one machine-readable JSON document —
 * the feed for the BENCH_*.json trajectory files.
 *
 * Usage pattern:
 *
 *     int main(int argc, char **argv) {
 *         bench::init(argc, argv, "table5_bus");
 *         ...
 *         bench::emit(t);            // printf + record a TextTable
 *         bench::note("ratio", 1.7); // record a headline scalar
 *         return bench::finish();    // write --json file if requested
 *     }
 *
 * The JSON schema is
 * {"bench": name, "wall_ms": elapsed, "tables":
 *  [TextTable::renderJson()...], "scalars": {name: value}}.
 * wall_ms is the bench's own wall-clock time from init() to finish(),
 * measured on the host — informational only (tools/bench_compare.py
 * reports it but never fails on it, since it varies with the machine
 * and the --jobs level while the simulated metrics must not).
 *
 * Benches that sweep independent configurations honor `--jobs <n>`
 * (default 1 = serial): init() parses it and jobs() exposes it, and
 * the sweep-style benches feed it to sim::SweepRunner /
 * parallel::runAll.  Results are bit-identical at every jobs level —
 * only wall_ms changes.  emit()/record()/note() stay main-thread-only;
 * worker tasks return values, the main thread renders them in input
 * order.
 */

#ifndef HSIPC_COMMON_BENCH_MAIN_HH
#define HSIPC_COMMON_BENCH_MAIN_HH

#include <string>

#include "common/table.hh"

namespace hsipc::bench
{

/**
 * Parse the command line (recognizing `--json <path>` and
 * `--jobs <n>`) and name the run.  Unknown arguments are fatal, so a
 * typo cannot silently yield a half-configured run.
 */
void init(int argc, char **argv, const std::string &benchName);

/**
 * Worker threads requested with `--jobs <n>` (1 when absent).
 * `--jobs 0` resolves to the hardware concurrency.
 */
int jobs();

/**
 * The `--json` output path ("" when absent).  Benches that emit
 * sibling artifacts (e.g. a timeline document for tools/report.py)
 * derive their paths from it so everything lands in the same results
 * directory.
 */
const std::string &jsonPath();

/**
 * True when the binary was invoked with `--profile`: the bench should
 * run its sweep with the engine self-profiler on and write the merged
 * profile document next to its other outputs (see profilePath()).
 * Defaults to false — the pay-for-use contract keeps unprofiled runs
 * byte-identical.
 */
bool profile();

/**
 * Where a `--profile` run should write its engine-profile document:
 * the --json path with its ".json" suffix replaced by
 * "_engine_profile.json" (or with that suffix appended when the path
 * does not end in ".json").  Without --json, falls back to
 * "<bench>_engine_profile.json" in the working directory.
 * tools/bench_compare.py skips *engine_profile* files, so committing
 * one next to a baseline never gates a regression run.
 */
std::string profilePath();

/** Print @p t to stdout and record it for the JSON document. */
void emit(const TextTable &t);

/**
 * Record @p t for the JSON document without printing — for benches
 * that interleave a table's render() with surrounding commentary.
 */
void record(const TextTable &t);

/** Record a named scalar result for the JSON document. */
void note(const std::string &name, double value);

/**
 * Write the JSON file when `--json` was given; returns the process
 * exit status (0).
 */
int finish();

} // namespace hsipc::bench

#endif // HSIPC_COMMON_BENCH_MAIN_HH
