#include "common/obs/engine_prof.hh"

#include <algorithm>
#include <cstdio>

#include "common/json.hh"
#include "common/logging.hh"

namespace hsipc::obs
{

namespace
{

std::string
u64(std::uint64_t v)
{
    return jsonNumber(static_cast<double>(v));
}

bool
edgeLess(const EngineProfile::Edge &a, const EngineProfile::Edge &b)
{
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
}

std::string
edgeJson(const EngineProfile::Edge &e)
{
    const double mean =
        e.count > 0 ? e.sumDeltaUs / static_cast<double>(e.count) : 0;
    return "{\"src\": " + jsonString(e.src) +
           ", \"dst\": " + jsonString(e.dst) +
           ", \"count\": " + u64(e.count) +
           ", \"zeroDelta\": " + u64(e.zeroDelta) +
           ", \"minPositiveDeltaUs\": " +
           jsonNumber(e.minPositiveDeltaUs) +
           ", \"meanDeltaUs\": " + jsonNumber(mean) + "}";
}

/**
 * The document body; @p full adds the wall-clock sketches and the
 * pool-miss count — everything a rerun cannot reproduce bit-exactly.
 */
std::string
render(const EngineProfile &p, bool full)
{
    std::string doc = "{\n  \"engineProfile\": 1";
    doc += ",\n  \"enabled\": ";
    doc += p.enabled ? "true" : "false";
    doc += ",\n  \"sampleEvery\": " + u64(p.sampleEvery);
    doc += ",\n  \"sampledEvents\": " + u64(p.sampledEvents);
    doc += ",\n  \"queue\": {\"pushes\": " + u64(p.pushes) +
           ", \"pops\": " + u64(p.pops) +
           ", \"comparisons\": " + u64(p.comparisons) +
           ", \"maxHeapSize\": " + u64(p.maxHeapSize) +
           ", \"remainingAtEnd\": " + u64(p.remainingAtEnd) +
           ", \"kind\": " +
           (p.queueKind == 1 ? std::string("\"ladder\"")
                             : std::string("\"heap\"")) +
           ", \"batchCommits\": " + u64(p.batchCommits) +
           ", \"batchedEvents\": " + u64(p.batchedEvents) + "}";
    if (p.queueKind == 1)
        doc += ",\n  \"ladder\": {\"topTransfers\": " +
               u64(p.topTransfers) +
               ", \"rungSpawns\": " + u64(p.rungSpawns) +
               ", \"bottomSorts\": " + u64(p.bottomSorts) +
               ", \"sortedEvents\": " + u64(p.sortedEvents) +
               ", \"maxBucket\": " + u64(p.maxBucket) + "}";
    doc += ",\n  \"callbacks\": {\"spillConstructs\": " +
           u64(p.spillConstructs) + ", \"oversizeConstructs\": " +
           u64(p.oversizeConstructs);
    if (full)
        doc += ", \"freshPoolBlocks\": " + u64(p.freshPoolBlocks);
    doc += "}";
    doc += ",\n  \"dwellUs\": " + p.dwellUs.summaryJson();
    doc += ",\n  \"heapDepth\": " + p.heapDepth.summaryJson();
    doc += ",\n  \"tracks\": [";
    for (std::size_t i = 0; i < p.tracks.size(); ++i) {
        const EngineProfile::Track &t = p.tracks[i];
        doc += std::string(i ? "," : "") + "\n   {\"name\": " +
               jsonString(t.name) + ", \"events\": " + u64(t.events) +
               ", \"sampled\": " +
               u64(static_cast<std::uint64_t>(t.wallNs.count()));
        if (full)
            doc += ", \"wallNs\": " + t.wallNs.summaryJson();
        doc += "}";
    }
    doc += p.tracks.empty() ? "]" : "\n  ]";
    doc += ",\n  \"edges\": [";
    for (std::size_t i = 0; i < p.edges.size(); ++i)
        doc += std::string(i ? "," : "") + "\n   " +
               edgeJson(p.edges[i]);
    doc += p.edges.empty() ? "]" : "\n  ]";
    return doc + "\n}\n";
}

} // namespace

void
EngineProfile::merge(const EngineProfile &other)
{
    enabled = enabled || other.enabled;
    if (sampleEvery == 0)
        sampleEvery = other.sampleEvery;
    pushes += other.pushes;
    pops += other.pops;
    comparisons += other.comparisons;
    maxHeapSize = std::max(maxHeapSize, other.maxHeapSize);
    remainingAtEnd += other.remainingAtEnd;
    // "Any ladder replica" wins: the merged document keeps the ladder
    // section whenever one contributor used the ladder policy.
    queueKind = std::max(queueKind, other.queueKind);
    topTransfers += other.topTransfers;
    rungSpawns += other.rungSpawns;
    bottomSorts += other.bottomSorts;
    sortedEvents += other.sortedEvents;
    maxBucket = std::max(maxBucket, other.maxBucket);
    batchCommits += other.batchCommits;
    batchedEvents += other.batchedEvents;
    spillConstructs += other.spillConstructs;
    oversizeConstructs += other.oversizeConstructs;
    freshPoolBlocks += other.freshPoolBlocks;
    sampledEvents += other.sampledEvents;
    dwellUs.merge(other.dwellUs);
    heapDepth.merge(other.heapDepth);
    for (const Track &ot : other.tracks) {
        Track *mine = nullptr;
        for (Track &t : tracks) {
            if (t.name == ot.name) {
                mine = &t;
                break;
            }
        }
        if (!mine) {
            Track fresh;
            fresh.name = ot.name;
            tracks.push_back(std::move(fresh));
            mine = &tracks.back();
        }
        mine->events += ot.events;
        mine->wallNs.merge(ot.wallNs);
    }
    for (const Edge &oe : other.edges) {
        Edge *mine = nullptr;
        for (Edge &e : edges) {
            if (e.src == oe.src && e.dst == oe.dst) {
                mine = &e;
                break;
            }
        }
        if (!mine) {
            edges.push_back(Edge{oe.src, oe.dst, 0, 0, 0, 0});
            mine = &edges.back();
        }
        mine->count += oe.count;
        mine->zeroDelta += oe.zeroDelta;
        if (oe.minPositiveDeltaUs > 0 &&
            (mine->minPositiveDeltaUs == 0 ||
             oe.minPositiveDeltaUs < mine->minPositiveDeltaUs))
            mine->minPositiveDeltaUs = oe.minPositiveDeltaUs;
        mine->sumDeltaUs += oe.sumDeltaUs;
    }
    std::sort(edges.begin(), edges.end(), edgeLess);
}

std::string
EngineProfile::deterministicJson() const
{
    return render(*this, false);
}

std::string
EngineProfile::toJson() const
{
    return render(*this, true);
}

void
EngineProfile::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        hsipc_fatal("cannot open engine-profile output file " + path);
    const std::string doc = toJson();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

void
EngineProfiler::observePush(Tick dwellTicks, std::size_t heapSize)
{
    prof_.dwellUs.observe(ticksToUs(dwellTicks));
    prof_.heapDepth.observe(static_cast<double>(heapSize));
}

void
EngineProfiler::endEvent()
{
    const auto dt = std::chrono::steady_clock::now() - t0_;
    prof_.tracks[static_cast<std::size_t>(eventOrigin_)]
        .wallNs.observe(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count()));
    ++prof_.sampledEvents;
}

void
EngineProfiler::finishRun(std::size_t remaining)
{
    prof_.remainingAtEnd = static_cast<std::uint64_t>(remaining);
    const CallbackPoolCounters now = callbackPoolCounters();
    prof_.spillConstructs =
        now.pooledConstructs - poolStart_.pooledConstructs;
    prof_.oversizeConstructs =
        now.oversizeConstructs - poolStart_.oversizeConstructs;
    prof_.freshPoolBlocks = now.freshBlocks - poolStart_.freshBlocks;
    cur_ = 0; // close the claim window

    // Events no component claimed belong to origin 0 ("sim").
    std::uint64_t claimedEvents = 0;
    for (std::size_t i = 1; i < prof_.tracks.size(); ++i)
        claimedEvents += prof_.tracks[i].events;
    hsipc_assert(claimedEvents <= prof_.pops);
    prof_.tracks[0].events = prof_.pops - claimedEvents;

    prof_.edges.clear();
    prof_.edges.reserve(edges_.size());
    for (const auto &[key, acc] : edges_) {
        EngineProfile::Edge e;
        e.src =
            prof_.tracks[static_cast<std::size_t>(key.first)].name;
        e.dst =
            prof_.tracks[static_cast<std::size_t>(key.second)].name;
        e.count = acc.count;
        e.zeroDelta = acc.zeroDelta;
        e.minPositiveDeltaUs = ticksToUs(acc.minPositive);
        e.sumDeltaUs = ticksToUs(acc.sum);
        prof_.edges.push_back(std::move(e));
    }
    std::sort(prof_.edges.begin(), prof_.edges.end(), edgeLess);
}

} // namespace hsipc::obs
