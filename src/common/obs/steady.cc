#include "common/obs/steady.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace hsipc::obs
{

namespace
{

constexpr std::size_t kBatch = 5; //!< the "5" in MSER-5

/** Minimum batches for the rule (and the CIs) to mean anything. */
constexpr std::size_t kMinBatches = 8;

std::vector<double>
batchMeans(const std::vector<double> &obs)
{
    std::vector<double> z;
    for (std::size_t i = 0; i + kBatch <= obs.size(); i += kBatch) {
        double sum = 0;
        for (std::size_t j = 0; j < kBatch; ++j)
            sum += obs[i + j];
        z.push_back(sum / double(kBatch));
    }
    return z;
}

} // namespace

std::size_t
mser5Truncation(const std::vector<double> &obs)
{
    const std::vector<double> z = batchMeans(obs);
    const std::size_t m = z.size();
    if (m < 2)
        return obs.size();
    // d* = argmin over d <= m/2 of sum_{j>=d}(Z_j - mean(d))^2
    //      / (m - d)^2  — the marginal standard error of the mean
    // were the first d batches discarded.
    std::size_t best = 0;
    double bestStat = 0;
    bool first = true;
    for (std::size_t d = 0; d <= m / 2; ++d) {
        const double nLeft = double(m - d);
        double mean = 0;
        for (std::size_t j = d; j < m; ++j)
            mean += z[j];
        mean /= nLeft;
        double ss = 0;
        for (std::size_t j = d; j < m; ++j)
            ss += (z[j] - mean) * (z[j] - mean);
        const double stat = ss / (nLeft * nLeft);
        if (first || stat < bestStat) {
            first = false;
            bestStat = stat;
            best = d;
        }
    }
    return best * kBatch;
}

SteadyStats
analyzeSteadyState(const std::vector<double> &tripsPerBin,
                   const std::vector<double> &rtSumUsPerBin,
                   double intervalUs, double warmupUs)
{
    hsipc_assert(intervalUs > 0);
    hsipc_assert(tripsPerBin.size() == rtSumUsPerBin.size());
    SteadyStats s;
    s.enabled = true;

    const double binSec = intervalUs / 1e6;
    std::vector<double> rate;
    rate.reserve(tripsPerBin.size());
    for (double trips : tripsPerBin)
        rate.push_back(trips / binSec);

    const std::size_t nBatches = rate.size() / kBatch;
    const std::size_t cut = mser5Truncation(rate);
    const std::size_t cutBatches = cut / kBatch;
    s.truncationUs = double(cut) * intervalUs;

    // MSER's verdict is only trustworthy with enough batches, and a
    // truncation point at the search boundary (half the run) means
    // the rule never saw the transient end.
    s.insufficientData =
        nBatches < kMinBatches || cutBatches >= nBatches / 2;

    // The configured warmup covers the transient iff the detected
    // truncation lies inside it (rounded up to whole batches, since
    // the rule cannot resolve finer than one batch).
    const double batchUs = double(kBatch) * intervalUs;
    const double warmupBatchesUs =
        std::ceil(warmupUs / batchUs) * batchUs;
    s.transientPolluted =
        !s.insufficientData && s.truncationUs > warmupBatchesUs;

    // Batch-means point estimates + CIs over the retained batches.
    RunningStat thr;
    RunningStat rt;
    for (std::size_t b = cutBatches; b < nBatches; ++b) {
        double trips = 0, rtSum = 0, r = 0;
        for (std::size_t j = 0; j < kBatch; ++j) {
            const std::size_t i = b * kBatch + j;
            trips += tripsPerBin[i];
            rtSum += rtSumUsPerBin[i];
            r += rate[i];
        }
        thr.add(r / double(kBatch));
        if (trips > 0)
            rt.add(rtSum / trips);
    }
    s.batches = static_cast<long>(thr.count());
    s.throughputPerSec = thr.mean();
    s.throughputCi95PerSec = thr.ci95();
    s.meanRtUs = rt.mean();
    s.rtCi95Us = rt.ci95();
    return s;
}

} // namespace hsipc::obs
