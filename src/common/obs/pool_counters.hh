/**
 * @file
 * Thread-local counters for the EventCallback spill pool.
 *
 * The pool itself lives in sim/des/callable.hh; the counters live
 * here (one layer down) so the engine profiler in common/obs can
 * snapshot them without a dependency cycle.  They are always
 * incremented — the cost is one thread-local increment on the rare
 * spill path — but read only when an EngineProfiler is active, which
 * computes per-run deltas from begin/finish snapshots.  Because every
 * simulation runs on one thread and runs on a worker thread are
 * sequential, a run's delta counts exactly its own constructions.
 */

#ifndef HSIPC_COMMON_OBS_POOL_COUNTERS_HH
#define HSIPC_COMMON_OBS_POOL_COUNTERS_HH

#include <cstdint>

namespace hsipc::obs
{

/** Cumulative per-thread EventCallback storage events. */
struct CallbackPoolCounters
{
    //! Constructions that outgrew the inline buffer and took a pool
    //! block (deterministic per run: a pure function of the event
    //! population the simulation creates).
    std::uint64_t pooledConstructs = 0;
    //! Constructions larger than a pool block — plain operator new
    //! (deterministic per run).
    std::uint64_t oversizeConstructs = 0;
    //! Pool misses: alloc() found the free list empty and went to
    //! operator new.  Depends on what earlier runs left parked on
    //! this thread's free list, so it is reported but excluded from
    //! the deterministic profile subset.
    std::uint64_t freshBlocks = 0;
};

inline CallbackPoolCounters &
callbackPoolCounters()
{
    thread_local CallbackPoolCounters counters;
    return counters;
}

} // namespace hsipc::obs

#endif // HSIPC_COMMON_OBS_POOL_COUNTERS_HH
