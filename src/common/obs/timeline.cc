#include "common/obs/timeline.hh"

#include <algorithm>
#include <cmath>

#include "common/json.hh"
#include "common/logging.hh"

namespace hsipc::obs
{

namespace
{

std::string
seriesJson(const std::vector<double> &bins)
{
    std::string out = "[";
    for (std::size_t i = 0; i < bins.size(); ++i)
        out += (i ? ", " : "") + jsonNumber(bins[i]);
    return out + "]";
}

std::string
seriesMapJson(const std::map<std::string, std::vector<double>> &m)
{
    std::string out = "{";
    bool first = true;
    for (const auto &[name, bins] : m) {
        out += std::string(first ? "" : ",") + "\n   " +
               jsonString(name) + ": " + seriesJson(bins);
        first = false;
    }
    return out + (first ? "}" : "\n  }");
}

} // namespace

std::size_t
Timeline::bins() const
{
    std::size_t n = 0;
    for (const auto &[name, bins] : counters)
        n = std::max(n, bins.size());
    for (const auto &[name, bins] : gauges)
        n = std::max(n, bins.size());
    return n;
}

double
Timeline::total(const std::string &name) const
{
    auto it = counters.find(name);
    if (it == counters.end())
        return 0;
    double sum = 0;
    for (double v : it->second)
        sum += v;
    return sum;
}

std::string
Timeline::toJson(const std::string &extraSections) const
{
    std::string doc = "{\n  \"intervalUs\": " + jsonNumber(intervalUs) +
                      ",\n  \"horizonUs\": " + jsonNumber(horizonUs) +
                      ",\n  \"warmupUs\": " + jsonNumber(warmupUs);
    if (!extraSections.empty())
        doc += ",\n  " + extraSections;
    doc += ",\n  \"counters\": " + seriesMapJson(counters);
    doc += ",\n  \"gauges\": " + seriesMapJson(gauges);
    return doc + "\n}\n";
}

void
TimelineRecorder::configure(double intervalUs, double horizonUs,
                            double warmupUs)
{
    hsipc_assert(intervalUs > 0 && horizonUs > 0);
    intervalTicks = usToTicks(intervalUs);
    hsipc_assert(intervalTicks > 0);
    intervalUsVal = intervalUs;
    horizonUsVal = horizonUs;
    warmupUsVal = warmupUs;
    const Tick horizon = usToTicks(horizonUs);
    bins = static_cast<std::size_t>(
        (horizon + intervalTicks - 1) / intervalTicks);
    hsipc_assert(bins > 0);
}

TimelineRecorder::Series &
TimelineRecorder::counter(const std::string &name)
{
    return counterMap[name];
}

std::size_t
TimelineRecorder::binOf(Tick at) const
{
    hsipc_assert(intervalTicks > 0 && at >= 0);
    // Events exactly on the horizon (the run's final instant) belong
    // to the last bin, not a phantom one past it.
    return std::min(static_cast<std::size_t>(at / intervalTicks),
                    bins - 1);
}

void
TimelineRecorder::add(Series &s, Tick at, double n)
{
    const std::size_t bin = binOf(at);
    if (s.bins.size() <= bin)
        s.bins.resize(bin + 1, 0);
    s.bins[bin] += n;
}

void
TimelineRecorder::sample(const std::string &name, std::size_t bin,
                         double value)
{
    hsipc_assert(bin < bins);
    std::vector<double> &g = gaugeMap[name];
    if (g.size() <= bin)
        g.resize(bin + 1, 0);
    g[bin] = value;
}

Timeline
TimelineRecorder::take()
{
    Timeline t;
    t.intervalUs = intervalUsVal;
    t.horizonUs = horizonUsVal;
    t.warmupUs = warmupUsVal;
    for (auto &[name, s] : counterMap) {
        s.bins.resize(bins, 0);
        t.counters.emplace(name, std::move(s.bins));
    }
    for (auto &[name, g] : gaugeMap) {
        g.resize(bins, 0);
        t.gauges.emplace(name, std::move(g));
    }
    counterMap.clear();
    gaugeMap.clear();
    return t;
}

} // namespace hsipc::obs
