#include "common/obs/sketch.hh"

#include <algorithm>
#include <cmath>

#include "common/json.hh"
#include "common/logging.hh"

namespace hsipc::obs
{

QuantileSketch::QuantileSketch(double relativeAccuracy)
    : alpha(relativeAccuracy),
      gamma((1 + relativeAccuracy) / (1 - relativeAccuracy)),
      logGamma(std::log(gamma))
{
    hsipc_assert(relativeAccuracy > 0 && relativeAccuracy < 1);
}

void
QuantileSketch::observe(double v)
{
    hsipc_assert(v >= 0 && std::isfinite(v));
    if (n == 0) {
        lo = hi = v;
    } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    ++n;
    total += v;
    if (v <= kMinValue) {
        ++zeroCount;
        return;
    }
    // Bucket i covers (gamma^(i-1), gamma^i]; its midpoint estimate
    // 2*gamma^i/(gamma+1) is within alpha of every value inside.
    const int i = static_cast<int>(std::ceil(std::log(v) / logGamma));
    ++positive[i];
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    hsipc_assert(alpha == other.alpha &&
                 "merging sketches of different accuracy");
    if (other.n == 0)
        return;
    if (n == 0) {
        lo = other.lo;
        hi = other.hi;
    } else {
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
    }
    n += other.n;
    total += other.total;
    zeroCount += other.zeroCount;
    for (const auto &[i, c] : other.positive)
        positive[i] += c;
}

double
QuantileSketch::quantile(double q) const
{
    hsipc_assert(q >= 0 && q <= 1);
    if (n == 0)
        return 0;
    // Same rank convention as the simulator's sorted-sample
    // percentiles: index floor(q * (n-1)) of the sorted stream.
    const std::int64_t rank =
        static_cast<std::int64_t>(q * static_cast<double>(n - 1));
    std::int64_t seen = zeroCount;
    if (rank < seen)
        return std::clamp(0.0, lo, hi);
    for (const auto &[i, c] : positive) {
        seen += c;
        if (rank < seen) {
            const double est =
                2 * std::pow(gamma, i) / (gamma + 1);
            // Clamping to the observed extremes never hurts the
            // relative-error bound and keeps q=0/q=1 exact.
            return std::clamp(est, lo, hi);
        }
    }
    return hi; // q == 1 numeric edge
}

std::string
QuantileSketch::summaryJson() const
{
    return "{\"count\": " + std::to_string(n) +
           ", \"sum\": " + jsonNumber(total) +
           ", \"min\": " + jsonNumber(min()) +
           ", \"max\": " + jsonNumber(max()) +
           ", \"p50\": " + jsonNumber(quantile(0.50)) +
           ", \"p95\": " + jsonNumber(quantile(0.95)) +
           ", \"p99\": " + jsonNumber(quantile(0.99)) + "}";
}

} // namespace hsipc::obs
