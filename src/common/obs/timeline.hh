/**
 * @file
 * Time-resolved windowed series ("timelines") for simulation runs.
 *
 * Everything else the simulator reports is a whole-run aggregate;
 * aggregates cannot show a goodput collapse at the knee or a
 * post-crash recovery ramp.  A Timeline keeps two kinds of series
 * over fixed intervals of simulated time:
 *
 *  - **counters**: per-bin event deltas (offered, completed, shed,
 *    retransmissions, ...).  Each increment is binned by the
 *    simulated timestamp at which the event happened, so by
 *    construction the series' integral (sum of bins) reproduces the
 *    corresponding whole-run Outcome counter *exactly* — the
 *    `timeline.integral` invariant the fuzz oracle checks.
 *
 *  - **gauges**: end-of-bin samples of instantaneous state
 *    (per-resource utilization over the bin, service-queue depth,
 *    free buffers, in-flight requests).
 *
 * Recording is pay-for-use: a disabled recorder leaves every series
 * handle null and each instrumentation site costs one branch.
 */

#ifndef HSIPC_COMMON_OBS_TIMELINE_HH
#define HSIPC_COMMON_OBS_TIMELINE_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/time.hh"

namespace hsipc::obs
{

/** The finished data, carried on the simulation Outcome. */
struct Timeline
{
    double intervalUs = 0; //!< bin width; 0 = timeline disabled
    double horizonUs = 0;  //!< covered span (warmup + measurement)
    double warmupUs = 0;   //!< where the measurement window starts
    std::map<std::string, std::vector<double>> counters;
    std::map<std::string, std::vector<double>> gauges;

    bool enabled() const { return intervalUs > 0; }
    std::size_t bins() const;

    /** Sum of a counter series' bins (0 for an absent series). */
    double total(const std::string &name) const;

    /**
     * Compact JSON object.  @p extraSections, when non-empty, is a
     * raw `"key": value, ...` fragment spliced in before the series —
     * the simulator uses it to embed steady-state stats and the
     * latency decomposition into the timeline file.
     */
    std::string toJson(const std::string &extraSections = "") const;

    friend bool operator==(const Timeline &, const Timeline &) =
        default;
};

/** Accumulates a Timeline against simulated time. */
class TimelineRecorder
{
  public:
    struct Series
    {
        std::vector<double> bins;
    };

    /** Enable recording: @p intervalUs-wide bins over @p horizonUs. */
    void configure(double intervalUs, double horizonUs,
                   double warmupUs);

    bool enabled() const { return intervalTicks > 0; }
    Tick interval() const { return intervalTicks; }

    /** Series handle (stable for the recorder's lifetime). */
    Series &counter(const std::string &name);

    /** Add @p n to the bin containing simulated time @p at. */
    void add(Series &s, Tick at, double n = 1);

    /** Set gauge @p name's value for bin @p bin. */
    void sample(const std::string &name, std::size_t bin,
                double value);

    /** The bin containing simulated time @p at. */
    std::size_t binOf(Tick at) const;

    /** Total bins over the configured horizon. */
    std::size_t binCount() const { return bins; }

    const std::map<std::string, Series> &counterSeries() const
    {
        return counterMap;
    }
    const std::map<std::string, std::vector<double>> &
    gaugeSeries() const
    {
        return gaugeMap;
    }

    /** Pad every series to binCount() and move the data out. */
    Timeline take();

  private:
    Tick intervalTicks = 0;
    double intervalUsVal = 0;
    double horizonUsVal = 0;
    double warmupUsVal = 0;
    std::size_t bins = 0;
    std::map<std::string, Series> counterMap;
    std::map<std::string, std::vector<double>> gaugeMap;
};

} // namespace hsipc::obs

#endif // HSIPC_COMMON_OBS_TIMELINE_HH
