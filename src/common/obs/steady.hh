/**
 * @file
 * Warmup / steady-state detection over timeline series.
 *
 * Benches pick a warmup window by eyeball; nothing checks it.  This
 * module applies the MSER-5 rule (White's Marginal Standard Error
 * Rule over batches of five observations) to the run's own
 * throughput timeline to *detect* the end of the initial transient,
 * then forms batch-means confidence intervals on throughput and
 * round-trip latency over the remaining batches.  A run whose
 * detected truncation point lands past its configured warmup gets
 * `transientPolluted = true`: its measurement window silently
 * averaged ramp-up into "steady state".
 */

#ifndef HSIPC_COMMON_OBS_STEADY_HH
#define HSIPC_COMMON_OBS_STEADY_HH

#include <cstddef>
#include <vector>

namespace hsipc::obs
{

/** Steady-state summary, surfaced as `Outcome.stats`. */
struct SteadyStats
{
    bool enabled = false; //!< analysis ran (timeline was recorded)

    /** Too few batches for MSER-5 to say anything (short run). */
    bool insufficientData = false;

    /**
     * The detected transient extends past the configured warmup:
     * measured aggregates include ramp-up.
     */
    bool transientPolluted = false;

    double truncationUs = 0; //!< detected steady-state onset
    long batches = 0;        //!< batch-means batches after truncation
    double throughputPerSec = 0; //!< steady-state batch-means mean
    double throughputCi95PerSec = 0;
    double meanRtUs = 0; //!< steady-state round-trip batch mean
    double rtCi95Us = 0;

    friend bool operator==(const SteadyStats &,
                           const SteadyStats &) = default;
};

/**
 * MSER-5 truncation point: the index into @p obs (a multiple of 5)
 * at which the marginal standard error of the remaining batch means
 * is minimized.  Returns obs.size() when there are fewer than two
 * batches to compare.
 */
std::size_t mser5Truncation(const std::vector<double> &obs);

/**
 * Full analysis over whole-run per-bin series (warmup included):
 * @p tripsPerBin round trips completed in each bin and
 * @p rtSumUsPerBin the summed round-trip microseconds of those
 * trips.  @p intervalUs is the bin width, @p warmupUs the configured
 * warmup the caller believed sufficient.
 */
SteadyStats analyzeSteadyState(const std::vector<double> &tripsPerBin,
                               const std::vector<double> &rtSumUsPerBin,
                               double intervalUs, double warmupUs);

} // namespace hsipc::obs

#endif // HSIPC_COMMON_OBS_STEADY_HH
