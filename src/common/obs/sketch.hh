/**
 * @file
 * Mergeable log-bucket quantile sketch (DDSketch-style).
 *
 * The metrics registry's log2 histograms answer "which power-of-two
 * bucket" — a quantile read off them can be wrong by up to 2x.  This
 * sketch keeps the same bounded-memory discipline but with buckets at
 * ratio gamma = (1+alpha)/(1-alpha), so any reported quantile is
 * within a *fixed relative error* alpha of the true sample quantile.
 *
 * The load-bearing property is that merge() is exact and associative:
 * two sketches over disjoint sample streams combine by adding bucket
 * counts, and the merged sketch is bit-identical to one that saw the
 * concatenated stream.  That is what lets SweepRunner shards — and,
 * later, per-LP engines of a parallel DES — aggregate percentiles
 * without the bias of averaging per-shard percentiles.
 */

#ifndef HSIPC_COMMON_OBS_SKETCH_HH
#define HSIPC_COMMON_OBS_SKETCH_HH

#include <cstdint>
#include <map>
#include <string>

namespace hsipc::obs
{

class QuantileSketch
{
  public:
    /** Default relative accuracy: quantiles within 1%. */
    static constexpr double kDefaultAlpha = 0.01;

    /** Values at or below this collapse into a single zero bucket. */
    static constexpr double kMinValue = 1e-9;

    explicit QuantileSketch(double relativeAccuracy = kDefaultAlpha);

    /** Record one (non-negative) sample. */
    void observe(double v);

    /**
     * Fold @p other into this sketch.  Exact: bucket counts add, so
     * (a+b)+c == a+(b+c) == one sketch fed all three streams.  Both
     * sketches must share the same relative accuracy.
     */
    void merge(const QuantileSketch &other);

    /**
     * The value at quantile @p q in [0, 1], within relativeAccuracy()
     * of the true sample quantile (0 when the sketch is empty).
     */
    double quantile(double q) const;

    std::int64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n > 0 ? total / double(n) : 0; }
    double min() const { return n > 0 ? lo : 0; }
    double max() const { return n > 0 ? hi : 0; }
    double relativeAccuracy() const { return alpha; }

    /** Live bucket count — the memory bound. */
    std::size_t buckets() const
    {
        return positive.size() + (zeroCount > 0 ? 1 : 0);
    }

    /** Compact JSON summary (count/sum/min/max/p50/p95/p99). */
    std::string summaryJson() const;

  private:
    double alpha;
    double gamma;    //!< bucket ratio (1+alpha)/(1-alpha)
    double logGamma; //!< cached log(gamma)
    std::map<int, std::int64_t> positive; //!< index -> count
    std::int64_t zeroCount = 0;           //!< samples <= kMinValue
    std::int64_t n = 0;
    double total = 0;
    double lo = 0;
    double hi = 0;
};

} // namespace hsipc::obs

#endif // HSIPC_COMMON_OBS_SKETCH_HH
