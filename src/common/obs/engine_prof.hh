/**
 * @file
 * Pay-for-use self-profiler for the discrete-event engine.
 *
 * Everything else under obs/ observes the *simulated* system; this
 * observes the *simulator*: where wall-clock time goes per executed
 * event (bucketed by the component that handled it), how the event
 * queue behaves (dwell times, heap depth, push/pop/comparison
 * counts), how the EventCallback storage tiers are exercised, and —
 * the piece ROADMAP item 2 needs — a scheduling-provenance graph:
 * which component schedules events for which, with what simulated
 * time delta.  The minimum positive delta on an edge is that edge's
 * empirical lookahead, exactly the quantity a Chandy–Misra
 * null-message parallelization must know per LP pair.
 *
 * Discipline mirrors the tracer and timeline recorders:
 *
 *  - **Disabled** (no profiler attached): one predictable branch per
 *    instrumentation site, and every simulator output — outcome JSON,
 *    traces, metrics — stays byte-identical (pinned by tests and the
 *    fuzz oracle's `engprof.*` family).
 *
 *  - **Enabled**: plain counter increments on every event; the
 *    expensive work (two steady_clock reads, quantile-sketch
 *    observes) runs only on a deterministic 1-in-N subsample chosen
 *    by event sequence number, keeping measured overhead on the
 *    event-queue microbenchmarks under 5%.
 *
 * Wall-clock values are inherently nondeterministic, so the profile
 * splits: deterministicJson() renders the subset that is bit-stable
 * across reruns and jobs levels (counters, dwell/depth sketches over
 * *simulated* quantities, the edge graph, per-track event counts);
 * toJson() adds the wall-time sketches and pool-miss counts on top.
 * Nothing here ever enters outcomeJson().
 */

#ifndef HSIPC_COMMON_OBS_ENGINE_PROF_HH
#define HSIPC_COMMON_OBS_ENGINE_PROF_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/obs/pool_counters.hh"
#include "common/obs/sketch.hh"
#include "common/time.hh"

namespace hsipc::obs
{

/** The finished engine profile, carried on the simulation Outcome. */
struct EngineProfile
{
    bool enabled = false;
    std::uint64_t sampleEvery = 0; //!< wall/dwell subsampling period

    // Event-queue telemetry (every event; plain counters).
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t comparisons = 0;   //!< heap-order tests in sifts
    std::uint64_t maxHeapSize = 0;   //!< peak in-flight population
    std::uint64_t remainingAtEnd = 0; //!< pushed, never executed

    //! Pending-event-set policy (mirrors Experiment::queueKind:
    //! 0 heap, 1 ladder).  `comparisons` above is the heap's sift
    //! cost; the ladder counters below are its cost model instead
    //! (rung spawns, Top transfers, Bottom sort volume, peak bucket
    //! occupancy) and stay zero on heap runs.  All deterministic.
    std::uint64_t queueKind = 0;
    std::uint64_t topTransfers = 0; //!< Top partitioned into rung 0
    std::uint64_t rungSpawns = 0;   //!< buckets split into finer rungs
    std::uint64_t bottomSorts = 0;  //!< buckets sorted into Bottom
    std::uint64_t sortedEvents = 0; //!< events those sorts ordered
    std::uint64_t maxBucket = 0;    //!< peak single-bucket population

    //! scheduleBatch() fan-out ledger: nonempty batch commits and
    //! the events they staged (a subset of pushes).
    std::uint64_t batchCommits = 0;
    std::uint64_t batchedEvents = 0;

    // EventCallback storage telemetry (per-run deltas).
    std::uint64_t spillConstructs = 0;    //!< pooled spill constructions
    std::uint64_t oversizeConstructs = 0; //!< larger than a pool block
    std::uint64_t freshPoolBlocks = 0;    //!< pool misses (NOT deterministic)

    std::uint64_t sampledEvents = 0; //!< executions wall-clock sampled

    QuantileSketch dwellUs;   //!< sampled events' queue residence (sim us)
    QuantileSketch heapDepth; //!< heap size at sampled pushes

    /** Wall-clock cost bucket: one per event-handling component. */
    struct Track
    {
        std::string name;
        std::uint64_t events = 0; //!< executed events attributed here
        QuantileSketch wallNs;    //!< sampled execution wall time (ns)
    };
    std::vector<Track> tracks;

    /** One scheduling-provenance ("who schedules whom") edge. */
    struct Edge
    {
        std::string src;
        std::string dst;
        std::uint64_t count = 0;     //!< schedules recorded on the edge
        std::uint64_t zeroDelta = 0; //!< of those, delta == 0 (no lookahead)
        //! Minimum positive simulated delta — the empirical lookahead
        //! (0 when every recorded delta was zero).
        double minPositiveDeltaUs = 0;
        double sumDeltaUs = 0; //!< for the mean delta
    };
    std::vector<Edge> edges; //!< sorted by (src, dst)

    /**
     * Fold @p other in: counters add, sketches merge exactly, tracks
     * and edges match by name so profiles from different runs of a
     * sweep aggregate into one cost model.
     */
    void merge(const EngineProfile &other);

    /**
     * The reproducible subset (no wall-clock values, no pool-miss
     * counts): bit-identical across reruns and jobs=1/N — what the
     * fuzz oracle's replica comparison pins.
     */
    std::string deterministicJson() const;

    /** The full document: deterministic subset + wall-time sketches. */
    std::string toJson() const;

    /** Write toJson() to @p path (fatal on I/O failure). */
    void writeFile(const std::string &path) const;
};

/**
 * The live recorder.  Attach to an EventQueue (queue hooks) and to
 * Processor/Resource instances (attribution scopes + provenance
 * edges); call beginRun() before and finishRun() after the run.
 */
class EngineProfiler
{
  public:
    /**
     * Default subsampling: every 1024th event pays for the wall
     * sample and sketch observes.  A steady_clock read costs ~30 ns
     * on typical hosts and an event ~35 ns, so at 1-in-1024 the
     * sampling machinery amortizes to ~1% of the event loop; runs
     * long enough to profile (10^5+ events) still collect hundreds
     * of samples per sketch.
     */
    static constexpr std::uint64_t defaultSampleShift = 10;

    explicit EngineProfiler(
        std::uint64_t sampleShift = defaultSampleShift)
        : sampleMask_((std::uint64_t{1} << sampleShift) - 1)
    {
        prof_.sampleEvery = sampleMask_ + 1;
        // Origin 0 catches events no component claims (kickoffs,
        // samplers, protocol timers).
        origin("sim");
    }

    /** Snapshot the pool counters; call on the run's thread. */
    void
    beginRun()
    {
        prof_.enabled = true;
        poolStart_ = callbackPoolCounters();
    }

    /**
     * Intern an attribution origin (idempotent per name).  Call while
     * wiring components up, before the run — interning mid-run would
     * allocate on the event path.
     */
    int
    origin(const std::string &name)
    {
        for (std::size_t i = 0; i < prof_.tracks.size(); ++i) {
            if (prof_.tracks[i].name == name)
                return static_cast<int>(i);
        }
        EngineProfile::Track t;
        t.name = name;
        prof_.tracks.push_back(std::move(t));
        return static_cast<int>(prof_.tracks.size() - 1);
    }

    /**
     * RAII attribution: while alive, scheduling-provenance edges name
     * @p id as their source, and the first scope entered during an
     * event claims the event (its count, and its wall sample when the
     * event is a sampled one).  Null-profiler-safe: one branch.
     */
    class Scope
    {
      public:
        Scope(EngineProfiler *p, int id) : p_(p)
        {
            if (!p_)
                return;
            prev_ = p_->cur_;
            p_->cur_ = id;
            // cur_ < 0 is the open claim window notePop() leaves; at
            // wiring time cur_ is 0, so wiring Scopes never claim.
            if (prev_ < 0) {
                p_->eventOrigin_ = id;
                ++p_->prof_.tracks[static_cast<std::size_t>(id)]
                      .events;
            }
        }
        ~Scope()
        {
            if (p_)
                p_->cur_ = prev_;
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        EngineProfiler *p_;
        int prev_ = 0;
    };

    // --- EventQueue hooks -------------------------------------------
    //
    // The queue keeps the per-event counters (pushes via its seq
    // counter, pops via its executed counter, comparisons and peak
    // depth as members on cache lines it dirties every event anyway)
    // and hands them over in batch; the profiler object is touched
    // per event only by notePop()'s one store, plus the sampled
    // 1-in-N sketch observes.  That split is what keeps profiled-run
    // overhead on the event-queue microbenchmarks low.

    /**
     * A sampled push: queue residence and post-push heap size.
     * Out-of-line (and cold): inlining two sketch observes into
     * EventQueue::schedule would bloat the hot path's code for a
     * 1-in-N branch.
     */
    __attribute__((cold)) void observePush(Tick dwellTicks,
                                           std::size_t heapSize);

    /**
     * A pop, immediately before the event body runs.  The negative
     * sentinel both resets the edge source to "sim" and opens the
     * claim window for the first Scope the event body enters — one
     * store on the hot path instead of a store plus a flag.
     */
    void
    notePop()
    {
        cur_ = -1;
    }

    /** Batched queue-counter deltas (flushed after run loops). */
    void
    addQueueTotals(std::uint64_t pushes, std::uint64_t pops,
                   std::uint64_t comparisons, std::uint64_t maxHeap)
    {
        prof_.pushes += pushes;
        prof_.pops += pops;
        prof_.comparisons += comparisons;
        if (maxHeap > prof_.maxHeapSize)
            prof_.maxHeapSize = maxHeap;
    }

    /** Record the queue's configured pending-set policy. */
    void
    noteQueueKind(int kind)
    {
        prof_.queueKind = static_cast<std::uint64_t>(kind);
    }

    /** Batched ladder structural deltas (maxBucket is cumulative). */
    void
    addLadderTotals(std::uint64_t topTransfers,
                    std::uint64_t rungSpawns,
                    std::uint64_t bottomSorts,
                    std::uint64_t sortedEvents, std::uint64_t maxBucket)
    {
        prof_.topTransfers += topTransfers;
        prof_.rungSpawns += rungSpawns;
        prof_.bottomSorts += bottomSorts;
        prof_.sortedEvents += sortedEvents;
        if (maxBucket > prof_.maxBucket)
            prof_.maxBucket = maxBucket;
    }

    /** Batched scheduleBatch() fan-out deltas. */
    void
    addBatchTotals(std::uint64_t commits, std::uint64_t events)
    {
        prof_.batchCommits += commits;
        prof_.batchedEvents += events;
    }

    /** The subsample mask; the queue caches it beside its hot state. */
    std::uint64_t sampleMask() const { return sampleMask_; }

    /** Deterministic 1-in-N subsample predicate. */
    bool
    sampledSeq(std::uint64_t seq) const
    {
        return (seq & sampleMask_) == 0;
    }

    /** Bracket a sampled event body with a wall-clock pair. */
    void
    beginEvent()
    {
        eventOrigin_ = 0;
        t0_ = std::chrono::steady_clock::now();
    }

    __attribute__((cold)) void endEvent();

    // --- provenance -------------------------------------------------

    /**
     * Record "the current origin schedules an event that @p dst will
     * handle, @p deltaTicks of simulated time from now".
     */
    void
    edge(int dst, Tick deltaTicks)
    {
        // An unclaimed event (cur_ still the notePop() sentinel)
        // schedules as origin 0, "sim".
        EdgeAccum &e = edges_[{cur_ < 0 ? 0 : cur_, dst}];
        ++e.count;
        if (deltaTicks <= 0) {
            ++e.zeroDelta;
        } else {
            if (e.minPositive == 0 || deltaTicks < e.minPositive)
                e.minPositive = deltaTicks;
            e.sum += deltaTicks;
        }
    }

    /** Close the run: @p remaining is the end-of-run queue size. */
    void finishRun(std::size_t remaining);

    const EngineProfile &profile() const { return prof_; }

    /** Move the finished profile out (the recorder is spent). */
    EngineProfile take() { return std::move(prof_); }

  private:
    struct EdgeAccum
    {
        std::uint64_t count = 0;
        std::uint64_t zeroDelta = 0;
        Tick minPositive = 0;
        Tick sum = 0;
    };

    EngineProfile prof_;
    std::uint64_t sampleMask_;
    std::map<std::pair<int, int>, EdgeAccum> edges_;
    CallbackPoolCounters poolStart_;
    //! Edge source while an event runs; < 0 (the notePop() sentinel)
    //! doubles as "this event is unclaimed — the next Scope claims".
    int cur_ = 0;
    int eventOrigin_ = 0; //!< first claimant of the current event
    std::chrono::steady_clock::time_point t0_;
};

} // namespace hsipc::obs

#endif // HSIPC_COMMON_OBS_ENGINE_PROF_HH
