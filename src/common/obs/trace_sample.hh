/**
 * @file
 * Deterministic per-message-id trace sampling.
 *
 * Full causal traces are O(messages); at cluster scale that is the
 * memory bill that kills observability first.  This sampler keeps a
 * fixed fraction of message ids, chosen by hashing the id with the
 * same SplitMix64 finalizer the parallel runner uses for seed
 * derivation.  The decision is a pure function of (seed, id):
 *
 *  - every recorder (causal log, tracer flows) agrees on which ids
 *    to keep, so a sampled message's causal chain is *complete* —
 *    start, every interval, and its terminal all survive;
 *  - a SweepRunner shard makes the same decisions at jobs=1 and
 *    jobs=N, preserving bit-identical outputs;
 *  - no RNG state is consumed, so enabling sampling perturbs
 *    nothing else in the simulation.
 */

#ifndef HSIPC_COMMON_OBS_TRACE_SAMPLE_HH
#define HSIPC_COMMON_OBS_TRACE_SAMPLE_HH

#include <cstdint>

namespace hsipc::obs
{

class TraceSampler
{
  public:
    /** Default: keep everything (rate 1). */
    TraceSampler() = default;

    TraceSampler(double rate, std::uint64_t seed)
        : rate(rate), seed(seed)
    {}

    bool keepAll() const { return rate >= 1; }

    /** Deterministic keep/drop decision for message @p msgId. */
    bool
    sampled(long msgId) const
    {
        if (rate >= 1)
            return true;
        if (rate <= 0)
            return false;
        // SplitMix64 finalizer over seed ^ golden-ratio-spread id —
        // the same mixer as parallel::deriveSeed, so stream quality
        // is already vetted.
        std::uint64_t z =
            seed + 0x9e3779b97f4a7c15ull *
                       (static_cast<std::uint64_t>(msgId) + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        // Top 53 bits -> uniform double in [0, 1).
        return static_cast<double>(z >> 11) * 0x1.0p-53 < rate;
    }

  private:
    double rate = 1;
    std::uint64_t seed = 0;
};

} // namespace hsipc::obs

#endif // HSIPC_COMMON_OBS_TRACE_SAMPLE_HH
