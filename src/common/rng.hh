/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the library draws from an explicitly
 * seeded Rng so that all tests and benches are reproducible.  The
 * generator is xoshiro256** seeded through SplitMix64, which is both
 * fast and of high statistical quality.
 */

#ifndef HSIPC_COMMON_RNG_HH
#define HSIPC_COMMON_RNG_HH

#include <cstdint>

namespace hsipc
{

/** xoshiro256** generator with SplitMix64 seeding. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is fine. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            // SplitMix64 step.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n); n must be positive. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric holding time in unit steps with the given mean:
     * the number of trials up to and including the first success of a
     * Bernoulli(1/mean) process.  Matches the thesis' approximation of
     * large constant delays by geometric delays (Fig 6.7).
     */
    std::uint64_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        const double p = 1.0 / mean;
        std::uint64_t n = 1;
        while (!chance(p))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace hsipc

#endif // HSIPC_COMMON_RNG_HH
