/**
 * @file
 * Minimal JSON writing helpers shared by the trace emitter, the
 * metrics registry, and the bench --json output.  Writing only — the
 * library never consumes JSON, so there is no parser here.
 */

#ifndef HSIPC_COMMON_JSON_HH
#define HSIPC_COMMON_JSON_HH

#include <cmath>
#include <cstdio>
#include <string>

namespace hsipc
{

/** Escape @p s for use inside a JSON string literal (no quotes added). */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/** Render @p s as a quoted JSON string. */
inline std::string
jsonString(const std::string &s)
{
    // Appends rather than an operator+ chain: the chain trips a
    // GCC 12 -Wrestrict false positive when inlined into callers.
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    out += jsonEscape(s);
    out += '"';
    return out;
}

/**
 * Render a double as a JSON number.  JSON has no NaN/Inf; those map
 * to null so the file stays loadable.  The shortest round-trippable
 * form (%.17g) would be noisy; %.12g is stable and ample for every
 * quantity this library measures.
 */
inline std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

} // namespace hsipc

#endif // HSIPC_COMMON_JSON_HH
