#include "common/bench_main.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/parallel/parallel.hh"

namespace hsipc::bench
{

namespace
{

/**
 * Per-process output state.  Sweep benches may run simulations on
 * worker threads, but emit()/record()/note() are main-thread-only
 * (rendering happens after the workers return their values), so this
 * needs no locking.
 */
struct State
{
    std::string name;
    std::string jsonPath;
    int jobs = 1;
    bool profile = false;
    std::chrono::steady_clock::time_point start;
    std::vector<std::string> tables; //!< pre-rendered JSON objects
    std::vector<std::pair<std::string, double>> scalars;
};

State &
state()
{
    static State s;
    return s;
}

} // namespace

void
init(int argc, char **argv, const std::string &benchName)
{
    state().name = benchName;
    state().start = std::chrono::steady_clock::now();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc)
                hsipc_fatal("--json requires a path argument");
            state().jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            if (i + 1 >= argc)
                hsipc_fatal("--jobs requires a thread count");
            char *end = nullptr;
            const long n = std::strtol(argv[++i], &end, 10);
            if (end == nullptr || *end != '\0' || n < 0)
                hsipc_fatal(std::string("invalid --jobs value '") +
                            argv[i] + "'");
            state().jobs = n == 0 ? parallel::defaultJobs()
                                  : static_cast<int>(n);
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            state().profile = true;
        } else {
            hsipc_fatal(std::string("unknown argument '") + argv[i] +
                        "' (supported: --json <path>, --jobs <n>, "
                        "--profile)");
        }
    }
}

int
jobs()
{
    return state().jobs;
}

const std::string &
jsonPath()
{
    return state().jsonPath;
}

bool
profile()
{
    return state().profile;
}

std::string
profilePath()
{
    const State &s = state();
    if (s.jsonPath.empty())
        return s.name + "_engine_profile.json";
    const std::string suffix = ".json";
    std::string base = s.jsonPath;
    if (base.size() > suffix.size() &&
        base.compare(base.size() - suffix.size(), suffix.size(),
                     suffix) == 0)
        base.resize(base.size() - suffix.size());
    return base + "_engine_profile.json";
}

void
emit(const TextTable &t)
{
    std::printf("%s", t.render().c_str());
    state().tables.push_back(t.renderJson());
}

void
record(const TextTable &t)
{
    state().tables.push_back(t.renderJson());
}

void
note(const std::string &name, double value)
{
    state().scalars.emplace_back(name, value);
}

int
finish()
{
    State &s = state();
    if (s.jsonPath.empty())
        return 0;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - s.start)
            .count();
    std::FILE *f = std::fopen(s.jsonPath.c_str(), "w");
    if (!f)
        hsipc_fatal("cannot open JSON output file " + s.jsonPath);
    std::string doc = "{\"bench\": " + jsonString(s.name) +
                      ",\n \"wall_ms\": " + jsonNumber(wall_ms) +
                      ",\n \"tables\": [";
    for (std::size_t i = 0; i < s.tables.size(); ++i)
        doc += (i ? ",\n  " : "\n  ") + s.tables[i];
    doc += s.tables.empty() ? "]" : "\n ]";
    doc += ",\n \"scalars\": {";
    for (std::size_t i = 0; i < s.scalars.size(); ++i) {
        doc += (i ? ", " : "") + jsonString(s.scalars[i].first) +
               ": " + jsonNumber(s.scalars[i].second);
    }
    doc += "}\n}\n";
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return 0;
}

} // namespace hsipc::bench
