#include "common/bench_main.hh"

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"

namespace hsipc::bench
{

namespace
{

/** Per-process output state (bench binaries are single-threaded). */
struct State
{
    std::string name;
    std::string jsonPath;
    std::vector<std::string> tables; //!< pre-rendered JSON objects
    std::vector<std::pair<std::string, double>> scalars;
};

State &
state()
{
    static State s;
    return s;
}

} // namespace

void
init(int argc, char **argv, const std::string &benchName)
{
    state().name = benchName;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc)
                hsipc_fatal("--json requires a path argument");
            state().jsonPath = argv[++i];
        } else {
            hsipc_fatal(std::string("unknown argument '") + argv[i] +
                        "' (supported: --json <path>)");
        }
    }
}

void
emit(const TextTable &t)
{
    std::printf("%s", t.render().c_str());
    state().tables.push_back(t.renderJson());
}

void
record(const TextTable &t)
{
    state().tables.push_back(t.renderJson());
}

void
note(const std::string &name, double value)
{
    state().scalars.emplace_back(name, value);
}

int
finish()
{
    State &s = state();
    if (s.jsonPath.empty())
        return 0;
    std::FILE *f = std::fopen(s.jsonPath.c_str(), "w");
    if (!f)
        hsipc_fatal("cannot open JSON output file " + s.jsonPath);
    std::string doc = "{\"bench\": " + jsonString(s.name) +
                      ",\n \"tables\": [";
    for (std::size_t i = 0; i < s.tables.size(); ++i)
        doc += (i ? ",\n  " : "\n  ") + s.tables[i];
    doc += s.tables.empty() ? "]" : "\n ]";
    doc += ",\n \"scalars\": {";
    for (std::size_t i = 0; i < s.scalars.size(); ++i) {
        doc += (i ? ", " : "") + jsonString(s.scalars[i].first) +
               ": " + jsonNumber(s.scalars[i].second);
    }
    doc += "}\n}\n";
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return 0;
}

} // namespace hsipc::bench
