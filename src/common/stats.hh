/**
 * @file
 * Small statistics helpers used by the simulators and benches.
 */

#ifndef HSIPC_COMMON_STATS_HH
#define HSIPC_COMMON_STATS_HH

#include <cmath>
#include <cstdint>

#include "common/logging.hh"
#include "common/time.hh"

namespace hsipc
{

/** Streaming mean/variance accumulator (Welford's algorithm). */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n;
        const double delta = x - meanAcc;
        meanAcc += delta / static_cast<double>(n);
        m2 += delta * (x - meanAcc);
    }

    std::uint64_t count() const { return n; }
    double mean() const { return meanAcc; }

    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    /** Half-width of an approximate 95% confidence interval. */
    double
    ci95() const
    {
        if (n < 2)
            return 0.0;
        return 1.96 * stddev() / std::sqrt(static_cast<double>(n));
    }

  private:
    std::uint64_t n = 0;
    double meanAcc = 0.0;
    double m2 = 0.0;
};

/**
 * Time-weighted average of a piecewise-constant quantity, e.g. the
 * number of busy servers or queue length over simulated time.
 */
class TimeWeightedStat
{
  public:
    /** Record that the tracked value changes to @p value at time @p now. */
    void
    update(Tick now, double value)
    {
        hsipc_assert(now >= lastTime);
        area += current * static_cast<double>(now - lastTime);
        lastTime = now;
        current = value;
    }

    /** Time average over [start, now]. */
    double
    average(Tick now) const
    {
        const Tick span = now - startTime;
        if (span <= 0)
            return current;
        const double tail = current * static_cast<double>(now - lastTime);
        return (area + tail) / static_cast<double>(span);
    }

    /** Restart the measurement window at @p now keeping the value. */
    void
    reset(Tick now)
    {
        startTime = now;
        lastTime = now;
        area = 0.0;
    }

    double value() const { return current; }

  private:
    Tick startTime = 0;
    Tick lastTime = 0;
    double current = 0.0;
    double area = 0.0;
};

} // namespace hsipc

#endif // HSIPC_COMMON_STATS_HH
