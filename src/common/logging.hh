/**
 * @file
 * Error-reporting helpers in the spirit of gem5's base/logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger or core dump can capture the state.
 * fatal()  — the caller supplied an impossible configuration; exits
 *            with status 1.
 * warn()   — something is suspicious but simulation can continue.
 */

#ifndef HSIPC_COMMON_LOGGING_HH
#define HSIPC_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace hsipc
{

[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

inline void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace hsipc

#define hsipc_panic(msg) ::hsipc::panicImpl(__FILE__, __LINE__, (msg))
#define hsipc_fatal(msg) ::hsipc::fatalImpl(__FILE__, __LINE__, (msg))
#define hsipc_warn(msg) ::hsipc::warnImpl(__FILE__, __LINE__, (msg))

/** Assert an internal invariant; active in all build types. */
#define hsipc_assert(cond)                                                  \
    do {                                                                    \
        if (!(cond))                                                        \
            hsipc_panic(std::string("assertion failed: ") + #cond);        \
    } while (0)

#endif // HSIPC_COMMON_LOGGING_HH
