/**
 * @file
 * Error-reporting helpers in the spirit of gem5's base/logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger or core dump can capture the state.
 * fatal()  — the caller supplied an impossible configuration; exits
 *            with status 1.
 * warn()   — something is suspicious but simulation can continue.
 */

#ifndef HSIPC_COMMON_LOGGING_HH
#define HSIPC_COMMON_LOGGING_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

namespace hsipc
{

[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

/**
 * Hook through which every warning is routed.  Unset (the default),
 * warnings print to stderr; tests install a hook to assert that a
 * warning fired (and to keep expected warnings out of test output).
 */
inline std::function<void(const std::string &)> &
warnHook()
{
    static std::function<void(const std::string &)> hook;
    return hook;
}

inline void
warnImpl(const char *file, int line, const std::string &msg)
{
    if (warnHook()) {
        warnHook()(msg);
        return;
    }
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace hsipc

#define hsipc_panic(msg) ::hsipc::panicImpl(__FILE__, __LINE__, (msg))
#define hsipc_fatal(msg) ::hsipc::fatalImpl(__FILE__, __LINE__, (msg))
#define hsipc_warn(msg) ::hsipc::warnImpl(__FILE__, __LINE__, (msg))

/**
 * Warn only the first time this call site is reached.  The flag is
 * atomic so call sites shared by concurrently running simulations
 * (e.g. under the parallel sweep runner) stay race-free.
 */
#define hsipc_warn_once(msg)                                                \
    do {                                                                    \
        static std::atomic<bool> hsipc_warned_once_{false};                 \
        if (!hsipc_warned_once_.exchange(true,                              \
                                         std::memory_order_relaxed)) {      \
            hsipc_warn(msg);                                                \
        }                                                                   \
    } while (0)

/**
 * Rate-limited warning for hot loops: the first occurrence and every
 * @p every-th after it are reported (with the running occurrence
 * count appended), the rest are suppressed — so a fault storm cannot
 * flood stderr.  The counter is per call site (atomic, see
 * hsipc_warn_once) and never resets.
 */
#define hsipc_warn_every(every, msg)                                        \
    do {                                                                    \
        static std::atomic<long> hsipc_warn_count_{0};                      \
        static_assert((every) > 0, "rate limit must be positive");          \
        const long hsipc_warn_prev_ = hsipc_warn_count_.fetch_add(          \
            1, std::memory_order_relaxed);                                  \
        if (hsipc_warn_prev_ % (every) == 0) {                              \
            hsipc_warn(std::string(msg) + " (occurrence " +                 \
                       std::to_string(hsipc_warn_prev_ + 1) + ")");         \
        }                                                                   \
    } while (0)

/** Assert an internal invariant; active in all build types. */
#define hsipc_assert(cond)                                                  \
    do {                                                                    \
        if (!(cond))                                                        \
            hsipc_panic(std::string("assertion failed: ") + #cond);        \
    } while (0)

#endif // HSIPC_COMMON_LOGGING_HH
