#include "common/json_value.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace hsipc
{

namespace
{

[[noreturn]] void
fail(const std::string &what, std::size_t at)
{
    throw JsonParseError(what, at);
}

/** Cursor over the input with one-token-lookahead helpers. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input", pos);
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'", pos);
        ++pos;
    }

    bool
    consumeWord(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue::makeString(parseString());
          case 't':
            if (!consumeWord("true"))
                fail("bad literal", pos);
            return JsonValue::makeBool(true);
          case 'f':
            if (!consumeWord("false"))
                fail("bad literal", pos);
            return JsonValue::makeBool(false);
          case 'n':
            if (!consumeWord("null"))
                fail("bad literal", pos);
            return JsonValue::makeNull();
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        std::map<std::string, JsonValue> members;
        skipWs();
        if (peek() == '}') {
            ++pos;
            return JsonValue::makeObject(std::move(members));
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            members[std::move(key)] = parseValue();
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return JsonValue::makeObject(std::move(members));
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        std::vector<JsonValue> elems;
        skipWs();
        if (peek() == ']') {
            ++pos;
            return JsonValue::makeArray(std::move(elems));
        }
        while (true) {
            elems.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return JsonValue::makeArray(std::move(elems));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string", pos);
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape", pos);
            const char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape", pos);
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape", pos - 1);
                }
                // The library only ever emits \u00xx control-character
                // escapes; encode the general case as UTF-8 anyway.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: fail("bad escape", pos - 1);
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        if (pos == start)
            fail("expected a value", start);
        const std::string tok = text.substr(start, pos - start);
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0')
            fail("bad number '" + tok + "'", start);
        return JsonValue::makeNumber(v);
    }
};

} // namespace

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        throw std::runtime_error("JSON value is not a boolean");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        throw std::runtime_error("JSON value is not a number");
    return num_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        throw std::runtime_error("JSON value is not a string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (kind_ != Kind::Array)
        throw std::runtime_error("JSON value is not an array");
    return arr_;
}

const std::map<std::string, JsonValue> &
JsonValue::asObject() const
{
    if (kind_ != Kind::Object)
        throw std::runtime_error("JSON value is not an object");
    return obj_;
}

bool
JsonValue::has(const std::string &key) const
{
    return kind_ == Kind::Object && obj_.count(key) > 0;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    return asObject().at(key);
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double d)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = d;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> elems)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.arr_ = std::move(elems);
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> m)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.obj_ = std::move(m);
    return v;
}

JsonValue
parseJson(const std::string &text)
{
    Parser p{text};
    JsonValue v = p.parseValue();
    p.skipWs();
    if (p.pos != text.size())
        fail("trailing garbage", p.pos);
    return v;
}

} // namespace hsipc
