#include "unixsock/sockets.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace hsipc::unixsock
{

namespace
{

struct Process
{
    std::string name;
};

/** One endpoint of a connected pair. */
struct Socket
{
    bool alive = false;
    ProcId owner = -1;
    SockId peer = -1;
    bool nonBlocking = false;
    bool peerClosed = false;

    // Inbound byte stream (toward this endpoint).
    std::deque<std::uint8_t> inbound;
    // A blocking sender's overflow, drained as inbound empties.
    std::deque<std::uint8_t> backlog;
};

} // namespace

struct SocketKernel::Impl
{
    std::vector<Process> procs;
    std::vector<Socket> socks;
    std::size_t capacity;

    bool
    valid(SockId s) const
    {
        return s >= 0 && static_cast<std::size_t>(s) < socks.size() &&
               socks[static_cast<std::size_t>(s)].alive;
    }

    Socket &sock(SockId s) { return socks[static_cast<std::size_t>(s)]; }

    /** Move backlog bytes into the inbound buffer as space appears. */
    void
    drainBacklog(Socket &dst)
    {
        while (!dst.backlog.empty() && dst.inbound.size() < capacity) {
            dst.inbound.push_back(dst.backlog.front());
            dst.backlog.pop_front();
        }
    }
};

SocketKernel::SocketKernel(int bufferBytes)
    : impl(std::make_unique<Impl>())
{
    hsipc_assert(bufferBytes >= 1);
    impl->capacity = static_cast<std::size_t>(bufferBytes);
}

SocketKernel::~SocketKernel() = default;

ProcId
SocketKernel::createProcess(std::string name)
{
    impl->procs.push_back(Process{std::move(name)});
    return static_cast<ProcId>(impl->procs.size() - 1);
}

std::pair<SockId, SockId>
SocketKernel::socketPair(ProcId a, ProcId b)
{
    const SockId sa = static_cast<SockId>(impl->socks.size());
    const SockId sb = sa + 1;
    Socket ea;
    ea.alive = true;
    ea.owner = a;
    ea.peer = sb;
    Socket eb;
    eb.alive = true;
    eb.owner = b;
    eb.peer = sa;
    impl->socks.push_back(std::move(ea));
    impl->socks.push_back(std::move(eb));
    return {sa, sb};
}

SockStatus
SocketKernel::setNonBlocking(ProcId p, SockId s, bool on)
{
    if (!impl->valid(s))
        return SockStatus::BadSocket;
    if (impl->sock(s).owner != p)
        return SockStatus::NotOwner;
    impl->sock(s).nonBlocking = on;
    return SockStatus::Ok;
}

SockStatus
SocketKernel::send(ProcId p, SockId s,
                   const std::vector<std::uint8_t> &data,
                   std::size_t *accepted)
{
    if (accepted)
        *accepted = 0;
    if (!impl->valid(s))
        return SockStatus::BadSocket;
    Socket &me = impl->sock(s);
    if (me.owner != p)
        return SockStatus::NotOwner;
    if (me.peerClosed || !impl->valid(me.peer))
        return SockStatus::PipeClosed; // SIGPIPE territory
    Socket &dst = impl->sock(me.peer);

    std::size_t taken = 0;
    for (std::uint8_t byte : data) {
        if (dst.inbound.size() < impl->capacity &&
            dst.backlog.empty()) {
            dst.inbound.push_back(byte);
            ++taken;
        } else if (!me.nonBlocking) {
            dst.backlog.push_back(byte);
            ++taken;
        } else {
            break;
        }
    }
    if (accepted)
        *accepted = taken;
    if (me.nonBlocking)
        return taken > 0 ? SockStatus::Ok : SockStatus::WouldBlock;
    return dst.backlog.empty() ? SockStatus::Ok : SockStatus::Blocked;
}

SockStatus
SocketKernel::recv(ProcId p, SockId s, std::size_t max,
                   std::vector<std::uint8_t> &out)
{
    out.clear();
    if (!impl->valid(s))
        return SockStatus::BadSocket;
    Socket &me = impl->sock(s);
    if (me.owner != p)
        return SockStatus::NotOwner;

    if (me.inbound.empty()) {
        if (me.peerClosed)
            return SockStatus::Eof;
        return me.nonBlocking ? SockStatus::WouldBlock
                              : SockStatus::Blocked;
    }
    const std::size_t n = std::min(max, me.inbound.size());
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(me.inbound.front());
        me.inbound.pop_front();
    }
    // Space opened up: a blocked peer sender's backlog flows in.
    impl->drainBacklog(me);
    return SockStatus::Ok;
}

bool
SocketKernel::readable(SockId s) const
{
    if (!impl->valid(s))
        return false;
    const Socket &me =
        impl->socks[static_cast<std::size_t>(s)];
    return !me.inbound.empty() || me.peerClosed;
}

bool
SocketKernel::senderBlocked(SockId s) const
{
    if (!impl->valid(s))
        return false;
    const Socket &me = impl->socks[static_cast<std::size_t>(s)];
    if (me.peer < 0 ||
        static_cast<std::size_t>(me.peer) >= impl->socks.size())
        return false;
    return !impl->socks[static_cast<std::size_t>(me.peer)]
                .backlog.empty();
}

SockStatus
SocketKernel::close(ProcId p, SockId s)
{
    if (!impl->valid(s))
        return SockStatus::BadSocket;
    Socket &me = impl->sock(s);
    if (me.owner != p)
        return SockStatus::NotOwner;
    me.alive = false;
    if (impl->valid(me.peer)) {
        Socket &peer = impl->sock(me.peer);
        peer.peerClosed = true;
        // Whatever the closer had queued (including a backlog toward
        // the peer) stays readable; the peer drains then sees EOF.
        impl->drainBacklog(peer);
    }
    return SockStatus::Ok;
}

std::size_t
SocketKernel::buffered(SockId s) const
{
    hsipc_assert(impl->valid(s));
    return impl->socks[static_cast<std::size_t>(s)].inbound.size();
}

} // namespace hsipc::unixsock
