/**
 * @file
 * A functional implementation of 4.2bsd Unix socket IPC (§3.2) — the
 * fourth system the thesis profiles (Tables 3.4/3.5), included
 * because it is the monolithic-kernel counterpoint to the three
 * message-based systems.
 *
 * The semantics that distinguish sockets from links/paths/services:
 *  - a connected socket pair is a *byte stream*, not a message queue:
 *    message boundaries are not preserved (sends coalesce, receives
 *    split);
 *  - data is kernel-buffered per direction with a bounded buffer;
 *    senders block on a full buffer and receivers on an empty one —
 *    unless the socket was marked non-blocking via a socket option
 *    (§3.2.3), in which case the call fails with WouldBlock;
 *  - either side may close; the peer then reads the remaining bytes
 *    followed by end-of-file, and further sends fail;
 *  - polling for readability exists (select()), but there is no
 *    selective receipt and no handler mechanism (§3.2.5).
 *
 * Blocking is modeled functionally: a blocking send on a full buffer
 * queues the overflow and the kernel reports the process Blocked; the
 * backlog drains automatically as the peer receives, unblocking the
 * sender.
 */

#ifndef HSIPC_UNIXSOCK_SOCKETS_HH
#define HSIPC_UNIXSOCK_SOCKETS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hsipc::unixsock
{

using ProcId = int;
using SockId = int;

/** Status codes mirroring errno-style outcomes. */
enum class SockStatus
{
    Ok,
    WouldBlock, //!< non-blocking op could not proceed (EWOULDBLOCK)
    Blocked,    //!< blocking send queued a backlog; process sleeps
    Eof,        //!< peer closed and the stream is drained
    BadSocket,  //!< closed/unknown descriptor (EBADF)
    NotOwner,   //!< descriptor belongs to another process
    PipeClosed, //!< send after the peer closed (EPIPE)
};

/** The socket layer. */
class SocketKernel
{
  public:
    explicit SocketKernel(int bufferBytes = 4096);
    ~SocketKernel();

    ProcId createProcess(std::string name);

    /** A connected pair (socketpair(2)); returns (a's fd, b's fd). */
    std::pair<SockId, SockId> socketPair(ProcId a, ProcId b);

    /** The §3.2.3 socket option: non-blocking operations. */
    SockStatus setNonBlocking(ProcId p, SockId s, bool on);

    /**
     * Send bytes down the stream.  Blocking sockets accept everything
     * (queueing a backlog and reporting Blocked when the buffer
     * fills); non-blocking sockets accept what fits and return
     * WouldBlock if that is nothing.  @p accepted reports the bytes
     * taken.
     */
    SockStatus send(ProcId p, SockId s,
                    const std::vector<std::uint8_t> &data,
                    std::size_t *accepted = nullptr);

    /**
     * Receive up to @p max bytes.  Returns Ok with 1..max bytes,
     * WouldBlock (non-blocking, empty), Blocked (blocking, empty —
     * the caller sleeps), or Eof.
     */
    SockStatus recv(ProcId p, SockId s, std::size_t max,
                    std::vector<std::uint8_t> &out);

    /** select()-style readability: data queued or EOF pending. */
    bool readable(SockId s) const;

    /** True while a blocking sender has an undrained backlog. */
    bool senderBlocked(SockId s) const;

    /** Close this endpoint. */
    SockStatus close(ProcId p, SockId s);

    /** Bytes currently buffered toward this endpoint. */
    std::size_t buffered(SockId s) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace hsipc::unixsock

#endif // HSIPC_UNIXSOCK_SOCKETS_HH
