#include "charlotte/links.hh"

#include <algorithm>
#include <deque>
#include <map>

#include "common/logging.hh"

namespace hsipc::charlotte
{

namespace
{

struct Process
{
    std::string name;
    std::vector<LinkEnd> ends;
};

struct End
{
    bool alive = false;
    ProcId holder = -1;
    LinkEnd peer = -1;
    // At most one pending operation per end in each direction.
    OpId pendingSend = -1;
    OpId pendingRecv = -1;
};

struct Op
{
    Completion status = Completion::Pending;
    bool isSend = false;
    bool any = false; //!< receive-any
    ProcId owner = -1;
    LinkEnd end = -1; //!< posted end (send/specific receive)
    LinkEnd doneOn = -1;
    std::uint64_t postSeq = 0;
    std::vector<std::uint8_t> data;
};

} // namespace

struct LinkKernel::Impl
{
    std::vector<Process> procs;
    std::vector<End> ends;
    std::vector<Op> ops;
    std::vector<OpId> anyReceives; //!< pending receive-any ops
    std::uint64_t seq = 0;
    mutable long checks = 0;

    /** One §3.4 validity check. */
    bool
    check(bool ok) const
    {
        ++checks;
        return ok;
    }

    bool
    validEnd(LinkEnd e) const
    {
        return check(e >= 0 &&
                     static_cast<std::size_t>(e) < ends.size() &&
                     ends[static_cast<std::size_t>(e)].alive);
    }

    bool
    holds(ProcId p, LinkEnd e) const
    {
        return check(ends[static_cast<std::size_t>(e)].holder == p);
    }

    End &end(LinkEnd e) { return ends[static_cast<std::size_t>(e)]; }

    Op &op(OpId o) { return ops[static_cast<std::size_t>(o)]; }

    OpId
    newOp(Op o)
    {
        o.postSeq = ++seq;
        ops.push_back(std::move(o));
        return static_cast<OpId>(ops.size() - 1);
    }

    void
    completeReceive(OpId recv_id, OpId send_id, LinkEnd on)
    {
        Op &recv = op(recv_id);
        Op &send = op(send_id);
        recv.status = Completion::Done;
        recv.data = std::move(send.data);
        recv.doneOn = on;
        send.status = Completion::Done;
        send.doneOn = end(on).peer;
    }

    /** Match a newly posted send on @p e against waiting receivers. */
    void
    matchSend(LinkEnd e)
    {
        End &se = end(e);
        if (se.pendingSend < 0)
            return;
        End &pe = end(se.peer);

        // A specific receive on the peer end wins first...
        if (check(pe.pendingRecv >= 0)) {
            const OpId r = pe.pendingRecv;
            pe.pendingRecv = -1;
            const OpId s = se.pendingSend;
            se.pendingSend = -1;
            completeReceive(r, s, se.peer);
            return;
        }
        // ...otherwise the peer holder's earliest receive-any.
        OpId best = -1;
        for (OpId r : anyReceives) {
            if (op(r).status == Completion::Pending &&
                check(op(r).owner == pe.holder)) {
                if (best < 0 || op(r).postSeq < op(best).postSeq)
                    best = r;
            }
        }
        if (best >= 0) {
            anyReceives.erase(std::remove(anyReceives.begin(),
                                          anyReceives.end(), best),
                              anyReceives.end());
            const OpId s = se.pendingSend;
            se.pendingSend = -1;
            completeReceive(best, s, se.peer);
        }
    }

    /** Find a pending send deliverable to a receive-any of @p p. */
    void
    matchReceiveAny(OpId recv_id)
    {
        const ProcId p = op(recv_id).owner;
        OpId best_send = -1;
        LinkEnd best_on = -1;
        for (LinkEnd mine :
             procs[static_cast<std::size_t>(p)].ends) {
            if (!end(mine).alive)
                continue;
            const End &pe = end(end(mine).peer);
            if (check(pe.pendingSend >= 0)) {
                const OpId s = pe.pendingSend;
                if (best_send < 0 ||
                    op(s).postSeq < op(best_send).postSeq) {
                    best_send = s;
                    best_on = mine;
                }
            }
        }
        if (best_send >= 0) {
            end(end(best_on).peer).pendingSend = -1;
            anyReceives.erase(std::remove(anyReceives.begin(),
                                          anyReceives.end(), recv_id),
                              anyReceives.end());
            completeReceive(recv_id, best_send, best_on);
        }
    }

    void
    abortEndOps(LinkEnd e, Completion why)
    {
        End &en = end(e);
        if (en.pendingSend >= 0) {
            op(en.pendingSend).status = why;
            en.pendingSend = -1;
        }
        if (en.pendingRecv >= 0) {
            op(en.pendingRecv).status = why;
            en.pendingRecv = -1;
        }
    }
};

LinkKernel::LinkKernel() : impl(std::make_unique<Impl>()) {}
LinkKernel::~LinkKernel() = default;

ProcId
LinkKernel::createProcess(std::string name)
{
    impl->procs.push_back(Process{std::move(name), {}});
    return static_cast<ProcId>(impl->procs.size() - 1);
}

std::pair<LinkEnd, LinkEnd>
LinkKernel::makeLink(ProcId a, ProcId b)
{
    const LinkEnd ea = static_cast<LinkEnd>(impl->ends.size());
    const LinkEnd eb = ea + 1;
    impl->ends.push_back(End{true, a, eb, -1, -1});
    impl->ends.push_back(End{true, b, ea, -1, -1});
    impl->procs[static_cast<std::size_t>(a)].ends.push_back(ea);
    impl->procs[static_cast<std::size_t>(b)].ends.push_back(eb);
    return {ea, eb};
}

LinkEnd
LinkKernel::peer(LinkEnd e) const
{
    hsipc_assert(impl->validEnd(e));
    return impl->ends[static_cast<std::size_t>(e)].peer;
}

ProcId
LinkKernel::holder(LinkEnd e) const
{
    if (e < 0 || static_cast<std::size_t>(e) >= impl->ends.size() ||
        !impl->ends[static_cast<std::size_t>(e)].alive)
        return -1;
    return impl->ends[static_cast<std::size_t>(e)].holder;
}

LinkStatus
LinkKernel::moveEnd(ProcId owner, LinkEnd e, ProcId to)
{
    if (!impl->validEnd(e))
        return LinkStatus::BadEnd;
    if (!impl->holds(owner, e))
        return LinkStatus::NotHolder;

    // Withdrawing the end cancels whatever the old holder posted.
    impl->abortEndOps(e, Completion::Canceled);

    auto &old_ends =
        impl->procs[static_cast<std::size_t>(owner)].ends;
    old_ends.erase(std::remove(old_ends.begin(), old_ends.end(), e),
                   old_ends.end());
    impl->end(e).holder = to;
    impl->procs[static_cast<std::size_t>(to)].ends.push_back(e);
    return LinkStatus::Ok;
}

LinkStatus
LinkKernel::destroyLink(ProcId requester, LinkEnd e)
{
    if (!impl->validEnd(e))
        return LinkStatus::BadEnd;
    // Equal rights: the holder of *either* end may destroy (§3.2.1).
    const LinkEnd other = impl->end(e).peer;
    if (!impl->holds(requester, e) && !impl->holds(requester, other))
        return LinkStatus::NotHolder;

    impl->abortEndOps(e, Completion::Destroyed);
    impl->abortEndOps(other, Completion::Destroyed);
    for (LinkEnd side : {e, other}) {
        End &en = impl->end(side);
        auto &pe =
            impl->procs[static_cast<std::size_t>(en.holder)].ends;
        pe.erase(std::remove(pe.begin(), pe.end(), side), pe.end());
        en.alive = false;
        en.holder = -1;
    }
    return LinkStatus::Ok;
}

OpId
LinkKernel::postSend(ProcId p, LinkEnd e, std::vector<std::uint8_t> data)
{
    hsipc_assert(impl->validEnd(e));
    hsipc_assert(impl->holds(p, e));
    hsipc_assert(impl->check(impl->end(e).pendingSend < 0));

    Op o;
    o.isSend = true;
    o.owner = p;
    o.end = e;
    o.data = std::move(data);
    const OpId id = impl->newOp(std::move(o));
    impl->end(e).pendingSend = id;
    impl->matchSend(e);
    return id;
}

OpId
LinkKernel::postReceive(ProcId p, LinkEnd e)
{
    hsipc_assert(impl->validEnd(e));
    hsipc_assert(impl->holds(p, e));
    hsipc_assert(impl->check(impl->end(e).pendingRecv < 0));

    Op o;
    o.owner = p;
    o.end = e;
    const OpId id = impl->newOp(std::move(o));
    impl->end(e).pendingRecv = id;
    // A send may already be waiting on the peer end.
    impl->matchSend(impl->end(e).peer);
    return id;
}

OpId
LinkKernel::postReceiveAny(ProcId p)
{
    Op o;
    o.owner = p;
    o.any = true;
    const OpId id = impl->newOp(std::move(o));
    impl->anyReceives.push_back(id);
    impl->matchReceiveAny(id);
    return id;
}

Completion
LinkKernel::poll(OpId op) const
{
    hsipc_assert(op >= 0 &&
                 static_cast<std::size_t>(op) < impl->ops.size());
    ++impl->checks;
    return impl->ops[static_cast<std::size_t>(op)].status;
}

const std::vector<std::uint8_t> &
LinkKernel::received(OpId op) const
{
    const Op &o = impl->ops[static_cast<std::size_t>(op)];
    hsipc_assert(!o.isSend && o.status == Completion::Done);
    return o.data;
}

LinkEnd
LinkKernel::completedOn(OpId op) const
{
    return impl->ops[static_cast<std::size_t>(op)].doneOn;
}

LinkStatus
LinkKernel::cancel(ProcId p, OpId op_id)
{
    if (op_id < 0 ||
        static_cast<std::size_t>(op_id) >= impl->ops.size())
        return LinkStatus::BadOp;
    Op &o = impl->op(op_id);
    if (!impl->check(o.owner == p))
        return LinkStatus::NotHolder;
    if (!impl->check(o.status == Completion::Pending))
        return LinkStatus::BadOp; // §3.2.4: completion already posted

    o.status = Completion::Canceled;
    if (o.any) {
        impl->anyReceives.erase(std::remove(impl->anyReceives.begin(),
                                            impl->anyReceives.end(),
                                            op_id),
                                impl->anyReceives.end());
    } else {
        End &en = impl->end(o.end);
        if (en.pendingSend == op_id)
            en.pendingSend = -1;
        if (en.pendingRecv == op_id)
            en.pendingRecv = -1;
    }
    return LinkStatus::Ok;
}

long
LinkKernel::checksPerformed() const
{
    return impl->checks;
}

} // namespace hsipc::charlotte
