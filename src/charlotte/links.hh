/**
 * @file
 * A functional implementation of Charlotte's link-based IPC (§3.2) —
 * the baseline semantics the thesis profiles in Table 3.1 and calls
 * "heavy-weight" compared to Jasmin and 925.
 *
 * Charlotte's distinctive choices, all implemented here:
 *  - processes communicate over two-way *links*; the processes at the
 *    two ends have **equal rights** to use, transfer ("move"), cancel
 *    on, and destroy the link, unilaterally;
 *  - messages are unbuffered reliable datagrams of arbitrary size: a
 *    send completes only when the peer's receive matches (rendezvous
 *    copy, no kernel buffering — which is why the thesis measured
 *    only 0.6 ms of copy time in a 20 ms round trip);
 *  - posting a send or receive is synchronous, completion is
 *    asynchronous: the caller polls the completion status or waits;
 *  - receive may name one specific link or *all* of the process'
 *    links (selective receipt, §3.2.5);
 *  - pending operations can be canceled; destroying a link aborts
 *    everything outstanding on it.
 *
 * The kernel counts every validity check it performs, so the §3.4
 * observation — the link protocol's complexity dominates Charlotte's
 * round trip — can be made quantitative next to the 925 kernel.
 */

#ifndef HSIPC_CHARLOTTE_LINKS_HH
#define HSIPC_CHARLOTTE_LINKS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hsipc::charlotte
{

using ProcId = int;
using LinkEnd = int;
using OpId = int;

/** Completion status of a posted operation (§3.2.4/3.2.5). */
enum class Completion
{
    Pending,
    Done,
    Canceled,
    Destroyed, //!< the link went away underneath the operation
};

/** Status codes of kernel calls. */
enum class LinkStatus
{
    Ok,
    BadEnd,        //!< not a live link end
    NotHolder,     //!< caller does not hold this end
    BadOp,         //!< unknown or not-cancelable operation
    AlreadyPosted, //!< an operation is already pending on this end
};

/** The Charlotte message-passing kernel. */
class LinkKernel
{
  public:
    LinkKernel();
    ~LinkKernel();

    // --- Processes and links ------------------------------------------

    ProcId createProcess(std::string name);

    /**
     * Create a two-way link between @p a and @p b; returns the end
     * held by each (first a's, then b's).
     */
    std::pair<LinkEnd, LinkEnd> makeLink(ProcId a, ProcId b);

    /** The opposite end of a live link. */
    LinkEnd peer(LinkEnd e) const;

    /** The process currently holding @p e (-1 when dead). */
    ProcId holder(LinkEnd e) const;

    /**
     * Transfer end @p e (held by @p owner) to process @p to — the
     * "move" right.  Outstanding operations posted on the moved end
     * are canceled.
     */
    LinkStatus moveEnd(ProcId owner, LinkEnd e, ProcId to);

    /**
     * Destroy the whole link from either end (the equal-rights
     * unilateral destroy).  Every pending operation on both ends
     * completes with Completion::Destroyed.
     */
    LinkStatus destroyLink(ProcId requester, LinkEnd e);

    // --- Posting operations --------------------------------------------

    /** Post a send of @p data on @p e; completion is asynchronous. */
    OpId postSend(ProcId p, LinkEnd e, std::vector<std::uint8_t> data);

    /** Post a receive on the specific link end @p e. */
    OpId postReceive(ProcId p, LinkEnd e);

    /**
     * Post a receive on *all* links of @p p (§3.2.5: a process may
     * specify any one link or all of them).  Matches the earliest
     * posted pending send across them.
     */
    OpId postReceiveAny(ProcId p);

    // --- Completion -----------------------------------------------------

    Completion poll(OpId op) const;

    /** The data delivered to a Done receive. */
    const std::vector<std::uint8_t> &received(OpId op) const;

    /** The link end a Done receive matched on. */
    LinkEnd completedOn(OpId op) const;

    /** Withdraw a still-pending operation. */
    LinkStatus cancel(ProcId p, OpId op);

    // --- Accounting ------------------------------------------------------

    /**
     * Validity checks executed so far — each test of end liveness,
     * holdership, rights, or state counts one (the currency of the
     * §3.4 "link translation and protocol processing" overhead).
     */
    long checksPerformed() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace hsipc::charlotte

#endif // HSIPC_CHARLOTTE_LINKS_HH
