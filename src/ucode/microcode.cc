#include "ucode/microcode.hh"

#include <map>

#include "common/logging.hh"

namespace hsipc::ucode
{

int
microWordBits()
{
    // alu(3) + srcA(4) + srcB(4) + dest(4) + mem(3) + table(3) +
    // cond(3) + target(7) + done(1) = 32 bits per micro-word.
    return 32;
}

std::string
ucodeErrorName(UcodeError e)
{
    switch (e) {
      case UcodeError::None: return "none";
      case UcodeError::TableFull: return "request table full";
      case UcodeError::InvalidTag: return "invalid tag";
      case UcodeError::ZeroCount: return "zero-length block request";
      case UcodeError::BadCommand: return "bad command";
    }
    hsipc_panic("bad UcodeError");
}

namespace
{

/** Tiny micro-assembler with symbolic branch targets. */
class Asm
{
  public:
    int here() const { return static_cast<int>(code.size()); }

    void
    label(const std::string &name)
    {
        hsipc_assert(!labels.count(name));
        labels[name] = here();
    }

    void
    emit(MicroInstruction mi, const std::string &target_label = "")
    {
        if (!target_label.empty())
            fixups.emplace_back(here(), target_label);
        code.push_back(mi);
    }

    // Convenience emitters -------------------------------------------

    /** dest <- src. */
    void
    mov(Reg dest, Reg src, const char *c = "")
    {
        emit({AluOp::PassA, src, Reg::None, dest, MemOp::None,
              TableOp::None, Cond::Never, 0, false, c});
    }

    /** Mar <- src and read memory into Mdr in the same cycle. */
    void
    readAt(Reg src, const char *c = "")
    {
        emit({AluOp::PassA, src, Reg::None, Reg::Mar, MemOp::Read16,
              TableOp::None, Cond::Never, 0, false, c});
    }

    /** Mdr <- src and write memory in the same cycle. */
    void
    writeFrom(Reg src, MemOp op = MemOp::Write16, const char *c = "")
    {
        emit({AluOp::PassA, src, Reg::None, Reg::Mdr, op,
              TableOp::None, Cond::Never, 0, false, c});
    }

    /** Compare a and b (Sub) and branch on the given condition. */
    void
    cmpBranch(Reg a, Reg b, Cond cond, const std::string &target,
              const char *c = "")
    {
        emit({AluOp::Sub, a, b, Reg::None, MemOp::None, TableOp::None,
              cond, 0, false, c},
             target);
    }

    void
    jump(const std::string &target, const char *c = "")
    {
        emit({AluOp::Nop, Reg::None, Reg::None, Reg::None, MemOp::None,
              TableOp::None, Cond::Always, 0, false, c},
             target);
    }

    /** End of routine; the Out register carries the result. */
    void
    done(const char *c = "")
    {
        emit({AluOp::Nop, Reg::None, Reg::None, Reg::None, MemOp::None,
              TableOp::None, Cond::Never, 0, true, c});
    }

    std::vector<MicroInstruction>
    assemble()
    {
        for (auto &[at, name] : fixups) {
            auto it = labels.find(name);
            hsipc_assert(it != labels.end());
            code[static_cast<std::size_t>(at)].target = it->second;
        }
        return code;
    }

  private:
    std::vector<MicroInstruction> code;
    std::map<std::string, int> labels;
    std::vector<std::pair<int, std::string>> fixups;
};

MicroProgram
build()
{
    MicroProgram p;
    Asm a;

    // --- Enqueue control block (§A.4.5): In0 = list, In1 = element.
    p.entryEnqueue = a.here();
    a.readAt(Reg::In0, "Mdr <- tail");
    a.mov(Reg::Tail, Reg::Mdr);
    a.cmpBranch(Reg::Tail, Reg::Zero, Cond::Zero, "enq.empty",
                "empty list?");
    a.readAt(Reg::Tail, "Mdr <- first");
    a.mov(Reg::Tmp, Reg::Mdr);
    a.mov(Reg::Mar, Reg::In1);
    a.writeFrom(Reg::Tmp, MemOp::Write16, "element->next := first");
    a.mov(Reg::Mar, Reg::Tail);
    a.writeFrom(Reg::In1, MemOp::Write16, "tail->next := element");
    a.jump("enq.settail");
    a.label("enq.empty");
    a.mov(Reg::Mar, Reg::In1);
    a.writeFrom(Reg::In1, MemOp::Write16, "element->next := element");
    a.label("enq.settail");
    a.mov(Reg::Mar, Reg::In0);
    a.writeFrom(Reg::In1, MemOp::Write16, "list := element");
    a.done();

    // --- First control block (§A.4.6): In0 = list; Out = head or 0.
    p.entryFirst = a.here();
    a.readAt(Reg::In0, "Mdr <- tail");
    a.mov(Reg::Tail, Reg::Mdr);
    a.cmpBranch(Reg::Tail, Reg::Zero, Cond::Zero, "fst.empty");
    a.readAt(Reg::Tail, "Mdr <- first");
    a.mov(Reg::First, Reg::Mdr);
    a.cmpBranch(Reg::Tail, Reg::First, Cond::NotZero, "fst.multi",
                "last element?");
    a.mov(Reg::Mar, Reg::In0);
    a.writeFrom(Reg::Zero, MemOp::Write16, "list := NULL");
    a.jump("fst.ret");
    a.label("fst.multi");
    a.readAt(Reg::First, "Mdr <- first->next");
    a.mov(Reg::Tmp, Reg::Mdr);
    a.mov(Reg::Mar, Reg::Tail);
    a.writeFrom(Reg::Tmp, MemOp::Write16, "tail->next := first->next");
    a.label("fst.ret");
    a.mov(Reg::Out, Reg::First);
    a.done();
    a.label("fst.empty");
    a.mov(Reg::Out, Reg::Zero);
    a.done();

    // --- Dequeue control block (§A.4.7): In0 = list, In1 = element.
    p.entryDequeue = a.here();
    a.readAt(Reg::In0, "Mdr <- tail");
    a.mov(Reg::Tail, Reg::Mdr);
    a.cmpBranch(Reg::Tail, Reg::Zero, Cond::Zero, "deq.out",
                "empty: no-op");
    a.mov(Reg::Curr, Reg::Tail);
    a.label("deq.loop");
    a.mov(Reg::Prev, Reg::Curr);
    a.readAt(Reg::Prev, "Mdr <- prev->next");
    a.mov(Reg::Curr, Reg::Mdr);
    a.cmpBranch(Reg::Curr, Reg::In1, Cond::Zero, "deq.found");
    a.cmpBranch(Reg::Curr, Reg::Tail, Cond::Zero, "deq.out",
                "wrapped: unsuccessful");
    a.jump("deq.loop");
    a.label("deq.found");
    a.cmpBranch(Reg::Curr, Reg::Prev, Cond::NotZero, "deq.unlink");
    a.mov(Reg::Mar, Reg::In0);
    a.writeFrom(Reg::Zero, MemOp::Write16, "singleton: list := NULL");
    a.jump("deq.out");
    a.label("deq.unlink");
    a.readAt(Reg::In1, "Mdr <- element->next");
    a.mov(Reg::Tmp, Reg::Mdr);
    a.mov(Reg::Mar, Reg::Prev);
    a.writeFrom(Reg::Tmp, MemOp::Write16, "prev->next := element->next");
    a.cmpBranch(Reg::Tail, Reg::In1, Cond::NotZero, "deq.out");
    a.mov(Reg::Mar, Reg::In0);
    a.writeFrom(Reg::Prev, MemOp::Write16, "list := prev (new tail)");
    a.label("deq.out");
    a.done();

    // --- Simple read (§A.4.8): In0 = address.
    p.entryRead = a.here();
    a.readAt(Reg::In0);
    a.mov(Reg::Out, Reg::Mdr);
    a.done();

    // --- Writes: In0 = address, In1 = data.
    p.entryWrite16 = a.here();
    a.mov(Reg::Mar, Reg::In0);
    a.writeFrom(Reg::In1, MemOp::Write16);
    a.done();

    p.entryWrite8 = a.here();
    a.mov(Reg::Mar, Reg::In0);
    a.writeFrom(Reg::In1, MemOp::Write8);
    a.done();

    // --- Block transfer (§A.4.2): allocate a request-table entry.
    // In0 = starting address, In1 = byte count; Out <- tag.
    p.entryBlockTransfer = a.here();
    a.emit({AluOp::Nop, Reg::None, Reg::None, Reg::None, MemOp::None,
            TableOp::Alloc, Cond::Error, 0, false,
            "allocate entry; Out <- tag"},
           "blk.err");
    a.done();
    a.label("blk.err");
    a.done("error code latched by the data path");

    // --- Block read data, one word (§A.4.3): In0 = tag.
    p.entryBlockReadWord = a.here();
    a.emit({AluOp::Nop, Reg::None, Reg::None, Reg::None, MemOp::None,
            TableOp::Lookup, Cond::Error, 0, false,
            "Mar <- entry.addr + offset"},
           "brd.err");
    a.emit({AluOp::Nop, Reg::None, Reg::None, Reg::None, MemOp::ReadBlk,
            TableOp::None, Cond::Never, 0, false, "Mdr <- M[Mar]"});
    a.mov(Reg::Out, Reg::Mdr);
    a.emit({AluOp::Nop, Reg::None, Reg::None, Reg::None, MemOp::None,
            TableOp::Advance, Cond::Never, 0, false, "offset += width"});
    a.emit({AluOp::Nop, Reg::None, Reg::None, Reg::None, MemOp::None,
            TableOp::FreeIfDone, Cond::Never, 0, false, ""});
    a.done();
    a.label("brd.err");
    a.done();

    // --- Block write data, one word (§A.4.4): In0 = tag, In1 = data.
    p.entryBlockWriteWord = a.here();
    a.emit({AluOp::Nop, Reg::None, Reg::None, Reg::None, MemOp::None,
            TableOp::Lookup, Cond::Error, 0, false,
            "Mar <- entry.addr + offset"},
           "bwr.err");
    a.emit({AluOp::PassA, Reg::In1, Reg::None, Reg::Mdr,
            MemOp::WriteBlk, TableOp::None, Cond::Never, 0, false,
            "M[Mar] <- In1"});
    a.emit({AluOp::Nop, Reg::None, Reg::None, Reg::None, MemOp::None,
            TableOp::Advance, Cond::Never, 0, false, "offset += width"});
    a.emit({AluOp::Nop, Reg::None, Reg::None, Reg::None, MemOp::None,
            TableOp::FreeIfDone, Cond::Never, 0, false, ""});
    a.done();
    a.label("bwr.err");
    a.done();

    p.store = a.assemble();

    // Burn the §A.4.1 mapping PROM.
    auto map = [&p](BusCommand c, int entry) {
        p.dispatch[static_cast<std::size_t>(c) & 0xf] = entry;
    };
    map(BusCommand::SimpleRead, p.entryRead);
    map(BusCommand::BlockTransfer, p.entryBlockTransfer);
    map(BusCommand::BlockReadData, p.entryBlockReadWord);
    map(BusCommand::BlockWriteData, p.entryBlockWriteWord);
    map(BusCommand::EnqueueControlBlock, p.entryEnqueue);
    map(BusCommand::DequeueControlBlock, p.entryDequeue);
    map(BusCommand::FirstControlBlock, p.entryFirst);
    map(BusCommand::WriteTwoBytes, p.entryWrite16);
    map(BusCommand::WriteByte, p.entryWrite8);
    return p;
}

} // namespace

const MicroProgram &
microProgram()
{
    static const MicroProgram p = build();
    return p;
}

MicroSequencer::MicroSequencer(bus::SimMemory &mem, int table_entries)
    : mem(mem), table(static_cast<std::size_t>(table_entries))
{
    hsipc_assert(table_entries >= 1 && table_entries <= 16);
}

MicroSequencer::RunResult
MicroSequencer::run(int entry, std::uint16_t in0, std::uint16_t in1)
{
    const MicroProgram &prog = microProgram();
    hsipc_assert(entry >= 0 &&
                 static_cast<std::size_t>(entry) < prog.store.size());

    auto reg = [this](Reg r) -> std::uint16_t & {
        return regs[static_cast<std::size_t>(r)];
    };
    reg(Reg::Zero) = 0;
    reg(Reg::In0) = in0;
    reg(Reg::In1) = in1;
    reg(Reg::Out) = 0;

    RunResult res;
    bool zero_flag = false;
    bool error_flag = false;
    bool done_flag = false;

    int pc = entry;
    for (;;) {
        hsipc_assert(static_cast<std::size_t>(pc) < prog.store.size());
        const MicroInstruction &mi =
            prog.store[static_cast<std::size_t>(pc)];
        ++res.cycles;
        ++cycles_total;
        if (res.cycles > 1000000)
            hsipc_panic("micro-routine did not terminate");

        // 1. ALU.
        if (mi.alu != AluOp::Nop) {
            const std::uint16_t a = reg(mi.srcA);
            const std::uint16_t b =
                mi.srcB == Reg::None ? 0 : reg(mi.srcB);
            std::uint16_t out = 0;
            switch (mi.alu) {
              case AluOp::PassA: out = a; break;
              case AluOp::Add:
                out = static_cast<std::uint16_t>(a + b);
                break;
              case AluOp::Sub:
                out = static_cast<std::uint16_t>(a - b);
                break;
              case AluOp::Inc:
                out = static_cast<std::uint16_t>(a + 1);
                break;
              case AluOp::Nop: break;
            }
            zero_flag = out == 0;
            if (mi.dest != Reg::None)
                reg(mi.dest) = out;
        }

        // 2. Request-table operation.
        switch (mi.table) {
          case TableOp::None:
            break;
          case TableOp::Alloc: {
            if (reg(Reg::In1) == 0) {
                error_flag = true;
                res.error = UcodeError::ZeroCount;
                break;
            }
            int tag = -1;
            for (std::size_t i = 0; i < table.size(); ++i) {
                if (!table[i].valid) {
                    tag = static_cast<int>(i);
                    break;
                }
            }
            if (tag < 0) {
                error_flag = true;
                res.error = UcodeError::TableFull;
                break;
            }
            RequestEntry &e = table[static_cast<std::size_t>(tag)];
            e.valid = true;
            e.write = pendingWrite;
            e.addr = reg(Reg::In0);
            e.count = reg(Reg::In1);
            e.offset = 0;
            reg(Reg::Out) = static_cast<std::uint16_t>(tag);
            break;
          }
          case TableOp::Lookup: {
            const std::uint16_t tag = reg(Reg::In0);
            if (tag >= table.size() || !table[tag].valid) {
                error_flag = true;
                res.error = UcodeError::InvalidTag;
                break;
            }
            const RequestEntry &e = table[tag];
            reg(Reg::Mar) = static_cast<std::uint16_t>(e.addr +
                                                       e.offset);
            lastAccessWidth = (e.count - e.offset) >= 2 ? 2 : 1;
            break;
          }
          case TableOp::Advance: {
            const std::uint16_t tag = reg(Reg::In0);
            hsipc_assert(tag < table.size() && table[tag].valid);
            table[tag].offset = static_cast<std::uint16_t>(
                table[tag].offset + lastAccessWidth);
            break;
          }
          case TableOp::FreeIfDone: {
            const std::uint16_t tag = reg(Reg::In0);
            hsipc_assert(tag < table.size() && table[tag].valid);
            if (table[tag].offset >= table[tag].count)
                table[tag].valid = false;
            done_flag = table[tag].offset >= table[tag].count;
            break;
          }
        }

        // 3. Memory port.
        switch (mi.mem) {
          case MemOp::None:
            break;
          case MemOp::Read16:
            reg(Reg::Mdr) = mem.read16(reg(Reg::Mar));
            break;
          case MemOp::Write16:
            mem.write16(reg(Reg::Mar), reg(Reg::Mdr));
            break;
          case MemOp::Write8:
            mem.write8(reg(Reg::Mar),
                       static_cast<std::uint8_t>(reg(Reg::Mdr)));
            break;
          case MemOp::ReadBlk:
            if (lastAccessWidth == 2)
                reg(Reg::Mdr) = mem.read16(reg(Reg::Mar));
            else
                reg(Reg::Mdr) = mem.read8(reg(Reg::Mar));
            break;
          case MemOp::WriteBlk:
            if (lastAccessWidth == 2)
                mem.write16(reg(Reg::Mar), reg(Reg::Mdr));
            else
                mem.write8(reg(Reg::Mar),
                           static_cast<std::uint8_t>(reg(Reg::Mdr)));
            break;
        }

        // 4. Sequencing.
        if (mi.done) {
            res.value = reg(Reg::Out);
            return res;
        }
        bool take = false;
        switch (mi.cond) {
          case Cond::Never: break;
          case Cond::Always: take = true; break;
          case Cond::Zero: take = zero_flag; break;
          case Cond::NotZero: take = !zero_flag; break;
          case Cond::Error: take = error_flag; break;
          case Cond::Done: take = done_flag; break;
        }
        pc = take ? mi.target : pc + 1;
    }
}

MicroSequencer::RunResult
MicroSequencer::blockTransfer(bool write, Addr addr, std::uint16_t count)
{
    pendingWrite = write;
    return run(microProgram().entryBlockTransfer, addr, count);
}

MicroSequencer::RunResult
MicroSequencer::runCommand(BusCommand c, std::uint16_t in0,
                           std::uint16_t in1)
{
    // Main loop (Fig A.5): latch CM into the command register, map to
    // a micro-address, execute; unknown codes are a §A.5.3 error.
    regs[static_cast<std::size_t>(Reg::Cmd)] =
        static_cast<std::uint16_t>(c);
    const int entry = microProgram().entryForCommand(c);
    if (entry < 0) {
        RunResult res;
        res.error = UcodeError::BadCommand;
        res.cycles = 1;
        ++cycles_total;
        return res;
    }
    return run(entry, in0, in1);
}

void
MicrocodedController::enqueue(Addr list, Addr element)
{
    const auto r = seq.run(microProgram().entryEnqueue, list, element);
    last_error = r.error;
    hsipc_assert(r.error == UcodeError::None);
}

Addr
MicrocodedController::first(Addr list)
{
    const auto r = seq.run(microProgram().entryFirst, list, 0);
    last_error = r.error;
    return r.value;
}

void
MicrocodedController::dequeue(Addr list, Addr element)
{
    const auto r = seq.run(microProgram().entryDequeue, list, element);
    last_error = r.error;
}

std::uint16_t
MicrocodedController::read(Addr a)
{
    const auto r = seq.run(microProgram().entryRead, a, 0);
    last_error = r.error;
    return r.value;
}

void
MicrocodedController::write16(Addr a, std::uint16_t v)
{
    const auto r = seq.run(microProgram().entryWrite16, a, v);
    last_error = r.error;
}

void
MicrocodedController::write8(Addr a, std::uint8_t v)
{
    const auto r = seq.run(microProgram().entryWrite8, a, v);
    last_error = r.error;
}

const std::vector<ComponentCount> &
dataPathComponents()
{
    // Reconstruction of Table A.1 from this data-path design, in
    // active components (gate-equivalents).
    static const std::vector<ComponentCount> table = {
        {"Register file (12 x 16-bit)", 1536},
        {"ALU (16-bit add/sub/pass)", 820},
        {"Request table (8 entries x 50 bits)", 3200},
        {"Operand/result bus latches", 288},
        {"Source/destination multiplexors", 360},
        {"Memory-port drivers and control", 180},
    };
    return table;
}

int
dataPathComponentTotal()
{
    int total = 0;
    for (const ComponentCount &c : dataPathComponents())
        total += c.count;
    return total;
}

} // namespace hsipc::ucode
