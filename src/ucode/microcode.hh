/**
 * @file
 * The microprogrammed smart-shared-memory controller of Appendix A.
 *
 * The thesis argues the smart bus is feasible by designing the memory
 * controller in detail: a micro-sequencer driving a small data path
 * (registers, an ALU, a block-request table, and the memory port),
 * with micro-routines for every bus command and under 3000 bits of
 * micro-store.  This module makes that design executable:
 *
 *  - MicroInstruction is the horizontal micro-word (Fig A.3):
 *    an ALU operation with two source registers and a destination, an
 *    optional memory operation (MAR/MDR), an optional request-table
 *    operation, and a branch condition with target;
 *  - MicroSequencer executes a micro-program cycle by cycle;
 *  - buildMicroProgram() assembles the micro-routines of §A.4 (main
 *    loop dispatch, enqueue/first/dequeue control block, read/write,
 *    block transfer, block read/write data);
 *  - MicrocodedController adapts the machine to the bus's
 *    MemoryController interface so the smart-bus simulator can run on
 *    real microcode, and exposes the §A.5 error conditions.
 */

#ifndef HSIPC_UCODE_MICROCODE_HH
#define HSIPC_UCODE_MICROCODE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bus/memory.hh"
#include "bus/signals.hh"
#include "bus/smart_bus.hh"

namespace hsipc::ucode
{

using bus::Addr;
using bus::BusCommand;

/** The data-path registers. */
enum class Reg : std::uint8_t
{
    None, //!< no write-back
    Zero, //!< constant 0
    Cmd,  //!< latched command lines CM0-3
    In0,  //!< first bus operand (list/address/tag)
    In1,  //!< second bus operand (element/count/data)
    Out,  //!< result latch driven back onto the bus
    Mar,  //!< memory address register
    Mdr,  //!< memory data register
    Tail,
    First,
    Prev,
    Curr,
    Tmp,
    NumRegs,
};

/** ALU operations. */
enum class AluOp : std::uint8_t
{
    PassA, //!< result = A
    Add,   //!< result = A + B
    Sub,   //!< result = A - B (drives the Zero condition)
    Inc,   //!< result = A + 1
    Nop,   //!< no ALU activity this cycle
};

/** Memory-port operations (address in Mar, data through Mdr). */
enum class MemOp : std::uint8_t
{
    None,
    Read16,   //!< Mdr <- M[Mar]
    Write16,  //!< M[Mar] <- Mdr
    Write8,   //!< M[Mar] <- low byte of Mdr
    ReadBlk,  //!< block access at the width latched by TableOp::Lookup
    WriteBlk, //!< block access at the latched width
};

/** Request-table operations (the table is part of the data path). */
enum class TableOp : std::uint8_t
{
    None,
    Alloc,   //!< allocate {In0=addr, In1=count}; Out <- tag or error
    Lookup,  //!< Mar <- entry[In0].addr + offset; error on bad tag
    Advance, //!< entry[In0].offset += width of the last access
    FreeIfDone, //!< release entry[In0] once offset >= count
};

/** Branch conditions (evaluated after the ALU). */
enum class Cond : std::uint8_t
{
    Never,   //!< fall through
    Always,  //!< jump
    Zero,    //!< jump when the last ALU result was zero
    NotZero, //!< jump when it was not
    Error,   //!< jump when the data path raised an error flag
    Done,    //!< jump when the table entry is exhausted
};

/** One horizontal micro-word. */
struct MicroInstruction
{
    AluOp alu = AluOp::Nop;
    Reg srcA = Reg::None;
    Reg srcB = Reg::None;
    Reg dest = Reg::None;
    MemOp mem = MemOp::None;
    TableOp table = TableOp::None;
    Cond cond = Cond::Never;
    int target = 0;
    bool done = false; //!< end of routine: return to the main loop
    const char *comment = "";
};

/** Width of the micro-word in bits (for the §5.5 size claim). */
int microWordBits();

/** Error codes of §A.5. */
enum class UcodeError
{
    None,
    TableFull,    //!< block request with no free table entry
    InvalidTag,   //!< data transfer for an unallocated tag
    ZeroCount,    //!< block request for zero bytes
    BadCommand,   //!< unknown command code
};

std::string ucodeErrorName(UcodeError e);

/** Entry points into the micro-program, one per bus command. */
struct MicroProgram
{
    std::vector<MicroInstruction> store;

    /**
     * The §A.4.1 main-loop dispatch: the latched command lines index
     * a small mapping PROM of micro-addresses (16 commands x 7 bits).
     * -1 marks an unassigned code (§A.5.3 non-programming error).
     */
    int dispatch[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                        -1, -1, -1, -1, -1, -1, -1, -1};

    int
    entryForCommand(BusCommand c) const
    {
        return dispatch[static_cast<std::size_t>(c) & 0xf];
    }

    /** Bits of the command-to-address mapping PROM. */
    static int mappingPromBits() { return 16 * 7; }
    int entryEnqueue = -1;
    int entryDequeue = -1;
    int entryFirst = -1;
    int entryRead = -1;
    int entryWrite16 = -1;
    int entryWrite8 = -1;
    int entryBlockTransfer = -1;
    int entryBlockReadWord = -1;
    int entryBlockWriteWord = -1;

    /** Total control-store bits: micro-words plus mapping PROM. */
    int sizeBits() const
    {
        return static_cast<int>(store.size()) * microWordBits() +
               mappingPromBits();
    }
};

/** Assemble the §A.4 micro-routines. */
const MicroProgram &microProgram();

/** One block-request-table entry of the data path. */
struct RequestEntry
{
    bool valid = false;
    bool write = false;
    Addr addr = 0;
    std::uint16_t count = 0;
    std::uint16_t offset = 0;
};

/**
 * The micro-sequencer plus data path, bound to a simulated memory.
 * run() executes one routine and reports the result, the error state,
 * and the number of micro-cycles consumed.
 */
class MicroSequencer
{
  public:
    MicroSequencer(bus::SimMemory &mem, int table_entries = 8);

    struct RunResult
    {
        std::uint16_t value = 0;
        UcodeError error = UcodeError::None;
        int cycles = 0;
    };

    /** Execute the routine at @p entry with the two bus operands. */
    RunResult run(int entry, std::uint16_t in0, std::uint16_t in1);

    /**
     * The main loop (§A.4.1): latch the command lines, dispatch
     * through the mapping PROM, execute.  Unassigned codes raise
     * BadCommand.  For BlockTransfer the transfer direction must have
     * been latched with setTransferDirection().
     */
    RunResult runCommand(BusCommand c, std::uint16_t in0,
                         std::uint16_t in1);

    /** Latch the direction of the next block-transfer request. */
    void setTransferDirection(bool write) { pendingWrite = write; }

    /** Allocate a block request directly (the block-transfer path). */
    RunResult blockTransfer(bool write, Addr addr, std::uint16_t count);

    const std::vector<RequestEntry> &requestTable() const
    {
        return table;
    }

    long totalCycles() const { return cycles_total; }

  private:
    friend class MicrocodedController;

    bus::SimMemory &mem;
    std::vector<RequestEntry> table;
    std::uint16_t regs[static_cast<std::size_t>(Reg::NumRegs)] = {};
    long cycles_total = 0;
    int lastAccessWidth = 2;
    bool pendingWrite = false; //!< direction latch for TableOp::Alloc
};

/**
 * Adapter running the smart bus on microcode.  Also exposes the
 * block-transfer path so tests can stream via the micro-routines.
 */
class MicrocodedController : public bus::MemoryController
{
  public:
    explicit MicrocodedController(bus::SimMemory &mem) : seq(mem) {}

    void enqueue(Addr list, Addr element) override;
    Addr first(Addr list) override;
    void dequeue(Addr list, Addr element) override;
    std::uint16_t read(Addr a) override;
    void write16(Addr a, std::uint16_t v) override;
    void write8(Addr a, std::uint8_t v) override;

    MicroSequencer &sequencer() { return seq; }
    UcodeError lastError() const { return last_error; }

  private:
    MicroSequencer seq;
    UcodeError last_error = UcodeError::None;
};

/** One row of the Table A.1 component inventory. */
struct ComponentCount
{
    const char *component;
    int count;
};

/**
 * Active-component inventory of the data-path chip (Table A.1's
 * counterpart, derived from this design; the thesis reports roughly
 * 6000 active components for the data path and 1000 for the
 * sequencer).
 */
const std::vector<ComponentCount> &dataPathComponents();

/** Total active components in the data path. */
int dataPathComponentTotal();

} // namespace hsipc::ucode

#endif // HSIPC_UCODE_MICROCODE_HH
