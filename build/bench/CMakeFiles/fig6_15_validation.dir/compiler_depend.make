# Empty compiler generated dependencies file for fig6_15_validation.
# This may be replaced when dependencies are built.
