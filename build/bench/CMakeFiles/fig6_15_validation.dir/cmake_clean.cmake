file(REMOVE_RECURSE
  "CMakeFiles/fig6_15_validation.dir/fig6_15_validation.cc.o"
  "CMakeFiles/fig6_15_validation.dir/fig6_15_validation.cc.o.d"
  "fig6_15_validation"
  "fig6_15_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_15_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
