file(REMOVE_RECURSE
  "CMakeFiles/fig7_multiprocessor.dir/fig7_multiprocessor.cc.o"
  "CMakeFiles/fig7_multiprocessor.dir/fig7_multiprocessor.cc.o.d"
  "fig7_multiprocessor"
  "fig7_multiprocessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_multiprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
