# Empty compiler generated dependencies file for fig7_multiprocessor.
# This may be replaced when dependencies are built.
