
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_library.cc" "bench/CMakeFiles/micro_library.dir/micro_library.cc.o" "gcc" "bench/CMakeFiles/micro_library.dir/micro_library.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsipc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hsipc_models.dir/DependInfo.cmake"
  "/root/repo/build/src/ucode/CMakeFiles/hsipc_ucode.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hsipc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/hsipc_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hsipc_gtpn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
