# Empty dependencies file for table6_24_25_offered_load.
# This may be replaced when dependencies are built.
