file(REMOVE_RECURSE
  "CMakeFiles/table6_24_25_offered_load.dir/table6_24_25_offered_load.cc.o"
  "CMakeFiles/table6_24_25_offered_load.dir/table6_24_25_offered_load.cc.o.d"
  "table6_24_25_offered_load"
  "table6_24_25_offered_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_24_25_offered_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
