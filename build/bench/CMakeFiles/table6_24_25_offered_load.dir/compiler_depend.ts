# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table6_24_25_offered_load.
