# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table6_1_processing_times.
