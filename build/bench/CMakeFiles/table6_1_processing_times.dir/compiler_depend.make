# Empty compiler generated dependencies file for table6_1_processing_times.
# This may be replaced when dependencies are built.
