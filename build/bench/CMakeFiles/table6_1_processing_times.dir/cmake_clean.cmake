file(REMOVE_RECURSE
  "CMakeFiles/table6_1_processing_times.dir/table6_1_processing_times.cc.o"
  "CMakeFiles/table6_1_processing_times.dir/table6_1_processing_times.cc.o.d"
  "table6_1_processing_times"
  "table6_1_processing_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_1_processing_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
