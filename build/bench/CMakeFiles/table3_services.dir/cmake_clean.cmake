file(REMOVE_RECURSE
  "CMakeFiles/table3_services.dir/table3_services.cc.o"
  "CMakeFiles/table3_services.dir/table3_services.cc.o.d"
  "table3_services"
  "table3_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
