# Empty dependencies file for table3_services.
# This may be replaced when dependencies are built.
