file(REMOVE_RECURSE
  "CMakeFiles/fig6_18_19_realistic.dir/fig6_18_19_realistic.cc.o"
  "CMakeFiles/fig6_18_19_realistic.dir/fig6_18_19_realistic.cc.o.d"
  "fig6_18_19_realistic"
  "fig6_18_19_realistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_18_19_realistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
