# Empty compiler generated dependencies file for fig6_18_19_realistic.
# This may be replaced when dependencies are built.
