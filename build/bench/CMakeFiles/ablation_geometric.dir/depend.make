# Empty dependencies file for ablation_geometric.
# This may be replaced when dependencies are built.
