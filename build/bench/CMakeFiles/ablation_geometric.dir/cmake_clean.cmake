file(REMOVE_RECURSE
  "CMakeFiles/ablation_geometric.dir/ablation_geometric.cc.o"
  "CMakeFiles/ablation_geometric.dir/ablation_geometric.cc.o.d"
  "ablation_geometric"
  "ablation_geometric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_geometric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
