# Empty dependencies file for ablation_network_buffers.
# This may be replaced when dependencies are built.
