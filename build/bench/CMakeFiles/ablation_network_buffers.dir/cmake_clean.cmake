file(REMOVE_RECURSE
  "CMakeFiles/ablation_network_buffers.dir/ablation_network_buffers.cc.o"
  "CMakeFiles/ablation_network_buffers.dir/ablation_network_buffers.cc.o.d"
  "ablation_network_buffers"
  "ablation_network_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_network_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
