file(REMOVE_RECURSE
  "CMakeFiles/ipc_semantics.dir/ipc_semantics.cc.o"
  "CMakeFiles/ipc_semantics.dir/ipc_semantics.cc.o.d"
  "ipc_semantics"
  "ipc_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
