
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ipc_semantics.cc" "bench/CMakeFiles/ipc_semantics.dir/ipc_semantics.cc.o" "gcc" "bench/CMakeFiles/ipc_semantics.dir/ipc_semantics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsipc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/charlotte/CMakeFiles/hsipc_charlotte.dir/DependInfo.cmake"
  "/root/repo/build/src/jasmin/CMakeFiles/hsipc_jasmin.dir/DependInfo.cmake"
  "/root/repo/build/src/k925/CMakeFiles/hsipc_k925.dir/DependInfo.cmake"
  "/root/repo/build/src/unixsock/CMakeFiles/hsipc_unixsock.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/hsipc_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
