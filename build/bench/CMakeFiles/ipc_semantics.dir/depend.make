# Empty dependencies file for ipc_semantics.
# This may be replaced when dependencies are built.
