# Empty dependencies file for sim_activity_profile.
# This may be replaced when dependencies are built.
