file(REMOVE_RECURSE
  "CMakeFiles/sim_activity_profile.dir/sim_activity_profile.cc.o"
  "CMakeFiles/sim_activity_profile.dir/sim_activity_profile.cc.o.d"
  "sim_activity_profile"
  "sim_activity_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_activity_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
