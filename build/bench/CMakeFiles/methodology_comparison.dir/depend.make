# Empty dependencies file for methodology_comparison.
# This may be replaced when dependencies are built.
