file(REMOVE_RECURSE
  "CMakeFiles/methodology_comparison.dir/methodology_comparison.cc.o"
  "CMakeFiles/methodology_comparison.dir/methodology_comparison.cc.o.d"
  "methodology_comparison"
  "methodology_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methodology_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
