file(REMOVE_RECURSE
  "CMakeFiles/fig6_20_23_partitioned.dir/fig6_20_23_partitioned.cc.o"
  "CMakeFiles/fig6_20_23_partitioned.dir/fig6_20_23_partitioned.cc.o.d"
  "fig6_20_23_partitioned"
  "fig6_20_23_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_20_23_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
