# Empty dependencies file for fig6_20_23_partitioned.
# This may be replaced when dependencies are built.
