file(REMOVE_RECURSE
  "CMakeFiles/ablation_mp_speed.dir/ablation_mp_speed.cc.o"
  "CMakeFiles/ablation_mp_speed.dir/ablation_mp_speed.cc.o.d"
  "ablation_mp_speed"
  "ablation_mp_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mp_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
