# Empty compiler generated dependencies file for table6_contention.
# This may be replaced when dependencies are built.
