file(REMOVE_RECURSE
  "CMakeFiles/table6_contention.dir/table6_contention.cc.o"
  "CMakeFiles/table6_contention.dir/table6_contention.cc.o.d"
  "table6_contention"
  "table6_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
