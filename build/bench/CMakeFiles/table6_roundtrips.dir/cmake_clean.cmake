file(REMOVE_RECURSE
  "CMakeFiles/table6_roundtrips.dir/table6_roundtrips.cc.o"
  "CMakeFiles/table6_roundtrips.dir/table6_roundtrips.cc.o.d"
  "table6_roundtrips"
  "table6_roundtrips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_roundtrips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
