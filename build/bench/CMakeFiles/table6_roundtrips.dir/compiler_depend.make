# Empty compiler generated dependencies file for table6_roundtrips.
# This may be replaced when dependencies are built.
