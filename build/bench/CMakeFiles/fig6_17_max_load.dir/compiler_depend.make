# Empty compiler generated dependencies file for fig6_17_max_load.
# This may be replaced when dependencies are built.
