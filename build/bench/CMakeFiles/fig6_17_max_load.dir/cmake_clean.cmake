file(REMOVE_RECURSE
  "CMakeFiles/fig6_17_max_load.dir/fig6_17_max_load.cc.o"
  "CMakeFiles/fig6_17_max_load.dir/fig6_17_max_load.cc.o.d"
  "fig6_17_max_load"
  "fig6_17_max_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_17_max_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
