file(REMOVE_RECURSE
  "CMakeFiles/beyond_mixed_workload.dir/beyond_mixed_workload.cc.o"
  "CMakeFiles/beyond_mixed_workload.dir/beyond_mixed_workload.cc.o.d"
  "beyond_mixed_workload"
  "beyond_mixed_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beyond_mixed_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
