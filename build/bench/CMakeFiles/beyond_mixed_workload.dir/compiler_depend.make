# Empty compiler generated dependencies file for beyond_mixed_workload.
# This may be replaced when dependencies are built.
