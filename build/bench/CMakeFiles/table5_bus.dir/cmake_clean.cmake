file(REMOVE_RECURSE
  "CMakeFiles/table5_bus.dir/table5_bus.cc.o"
  "CMakeFiles/table5_bus.dir/table5_bus.cc.o.d"
  "table5_bus"
  "table5_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
