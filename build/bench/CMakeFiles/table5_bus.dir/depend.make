# Empty dependencies file for table5_bus.
# This may be replaced when dependencies are built.
