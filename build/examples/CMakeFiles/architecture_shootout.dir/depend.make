# Empty dependencies file for architecture_shootout.
# This may be replaced when dependencies are built.
