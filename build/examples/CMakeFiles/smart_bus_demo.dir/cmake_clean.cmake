file(REMOVE_RECURSE
  "CMakeFiles/smart_bus_demo.dir/smart_bus_demo.cpp.o"
  "CMakeFiles/smart_bus_demo.dir/smart_bus_demo.cpp.o.d"
  "smart_bus_demo"
  "smart_bus_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_bus_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
