# Empty dependencies file for smart_bus_demo.
# This may be replaced when dependencies are built.
