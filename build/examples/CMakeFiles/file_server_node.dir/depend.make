# Empty dependencies file for file_server_node.
# This may be replaced when dependencies are built.
