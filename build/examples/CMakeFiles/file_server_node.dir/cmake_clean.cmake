file(REMOVE_RECURSE
  "CMakeFiles/file_server_node.dir/file_server_node.cpp.o"
  "CMakeFiles/file_server_node.dir/file_server_node.cpp.o.d"
  "file_server_node"
  "file_server_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_server_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
