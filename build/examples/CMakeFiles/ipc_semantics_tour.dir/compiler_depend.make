# Empty compiler generated dependencies file for ipc_semantics_tour.
# This may be replaced when dependencies are built.
