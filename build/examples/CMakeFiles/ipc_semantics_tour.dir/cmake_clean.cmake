file(REMOVE_RECURSE
  "CMakeFiles/ipc_semantics_tour.dir/ipc_semantics_tour.cpp.o"
  "CMakeFiles/ipc_semantics_tour.dir/ipc_semantics_tour.cpp.o.d"
  "ipc_semantics_tour"
  "ipc_semantics_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc_semantics_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
