# Empty compiler generated dependencies file for distributed_system.
# This may be replaced when dependencies are built.
