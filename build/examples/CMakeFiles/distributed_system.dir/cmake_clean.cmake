file(REMOVE_RECURSE
  "CMakeFiles/distributed_system.dir/distributed_system.cpp.o"
  "CMakeFiles/distributed_system.dir/distributed_system.cpp.o.d"
  "distributed_system"
  "distributed_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
