# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;9;hsipc_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smart_bus_demo "/root/repo/build/examples/smart_bus_demo")
set_tests_properties(example_smart_bus_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;hsipc_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_architecture_shootout "/root/repo/build/examples/architecture_shootout")
set_tests_properties(example_architecture_shootout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;15;hsipc_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_file_server_node "/root/repo/build/examples/file_server_node")
set_tests_properties(example_file_server_node PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;19;hsipc_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ipc_semantics_tour "/root/repo/build/examples/ipc_semantics_tour")
set_tests_properties(example_ipc_semantics_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;23;hsipc_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_system "/root/repo/build/examples/distributed_system")
set_tests_properties(example_distributed_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;26;hsipc_add_example;/root/repo/examples/CMakeLists.txt;0;")
