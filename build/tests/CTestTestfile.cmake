# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_gtpn[1]_include.cmake")
include("/root/repo/build/tests/test_markov[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_bus[1]_include.cmake")
include("/root/repo/build/tests/test_ucode[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_prof[1]_include.cmake")
include("/root/repo/build/tests/test_k925[1]_include.cmake")
include("/root/repo/build/tests/test_charlotte[1]_include.cmake")
include("/root/repo/build/tests/test_jasmin[1]_include.cmake")
include("/root/repo/build/tests/test_reproduction[1]_include.cmake")
include("/root/repo/build/tests/test_unixsock[1]_include.cmake")
