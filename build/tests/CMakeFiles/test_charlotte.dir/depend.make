# Empty dependencies file for test_charlotte.
# This may be replaced when dependencies are built.
