file(REMOVE_RECURSE
  "CMakeFiles/test_charlotte.dir/test_charlotte.cc.o"
  "CMakeFiles/test_charlotte.dir/test_charlotte.cc.o.d"
  "test_charlotte"
  "test_charlotte.pdb"
  "test_charlotte[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charlotte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
