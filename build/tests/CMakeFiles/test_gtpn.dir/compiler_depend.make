# Empty compiler generated dependencies file for test_gtpn.
# This may be replaced when dependencies are built.
