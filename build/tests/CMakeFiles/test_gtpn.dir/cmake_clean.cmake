file(REMOVE_RECURSE
  "CMakeFiles/test_gtpn.dir/test_gtpn.cc.o"
  "CMakeFiles/test_gtpn.dir/test_gtpn.cc.o.d"
  "test_gtpn"
  "test_gtpn.pdb"
  "test_gtpn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gtpn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
