file(REMOVE_RECURSE
  "CMakeFiles/test_jasmin.dir/test_jasmin.cc.o"
  "CMakeFiles/test_jasmin.dir/test_jasmin.cc.o.d"
  "test_jasmin"
  "test_jasmin.pdb"
  "test_jasmin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jasmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
