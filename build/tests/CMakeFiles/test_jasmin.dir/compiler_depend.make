# Empty compiler generated dependencies file for test_jasmin.
# This may be replaced when dependencies are built.
