file(REMOVE_RECURSE
  "CMakeFiles/test_k925.dir/test_k925.cc.o"
  "CMakeFiles/test_k925.dir/test_k925.cc.o.d"
  "test_k925"
  "test_k925.pdb"
  "test_k925[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_k925.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
