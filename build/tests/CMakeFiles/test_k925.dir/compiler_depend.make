# Empty compiler generated dependencies file for test_k925.
# This may be replaced when dependencies are built.
