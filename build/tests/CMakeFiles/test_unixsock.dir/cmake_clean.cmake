file(REMOVE_RECURSE
  "CMakeFiles/test_unixsock.dir/test_unixsock.cc.o"
  "CMakeFiles/test_unixsock.dir/test_unixsock.cc.o.d"
  "test_unixsock"
  "test_unixsock.pdb"
  "test_unixsock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unixsock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
