# Empty compiler generated dependencies file for test_unixsock.
# This may be replaced when dependencies are built.
