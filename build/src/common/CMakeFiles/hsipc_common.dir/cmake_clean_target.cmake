file(REMOVE_RECURSE
  "libhsipc_common.a"
)
