# Empty compiler generated dependencies file for hsipc_common.
# This may be replaced when dependencies are built.
