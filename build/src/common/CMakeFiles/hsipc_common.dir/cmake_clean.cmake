file(REMOVE_RECURSE
  "CMakeFiles/hsipc_common.dir/table.cc.o"
  "CMakeFiles/hsipc_common.dir/table.cc.o.d"
  "libhsipc_common.a"
  "libhsipc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsipc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
