file(REMOVE_RECURSE
  "libhsipc_prof.a"
)
