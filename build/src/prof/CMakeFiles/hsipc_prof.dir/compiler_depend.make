# Empty compiler generated dependencies file for hsipc_prof.
# This may be replaced when dependencies are built.
