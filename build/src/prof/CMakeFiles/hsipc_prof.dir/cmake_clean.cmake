file(REMOVE_RECURSE
  "CMakeFiles/hsipc_prof.dir/callgraph.cc.o"
  "CMakeFiles/hsipc_prof.dir/callgraph.cc.o.d"
  "CMakeFiles/hsipc_prof.dir/kernels.cc.o"
  "CMakeFiles/hsipc_prof.dir/kernels.cc.o.d"
  "CMakeFiles/hsipc_prof.dir/profiler.cc.o"
  "CMakeFiles/hsipc_prof.dir/profiler.cc.o.d"
  "libhsipc_prof.a"
  "libhsipc_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsipc_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
