file(REMOVE_RECURSE
  "libhsipc_unixsock.a"
)
