# Empty compiler generated dependencies file for hsipc_unixsock.
# This may be replaced when dependencies are built.
