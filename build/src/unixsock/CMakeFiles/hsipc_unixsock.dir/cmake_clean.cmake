file(REMOVE_RECURSE
  "CMakeFiles/hsipc_unixsock.dir/sockets.cc.o"
  "CMakeFiles/hsipc_unixsock.dir/sockets.cc.o.d"
  "libhsipc_unixsock.a"
  "libhsipc_unixsock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsipc_unixsock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
