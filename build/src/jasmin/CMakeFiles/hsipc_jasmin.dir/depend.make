# Empty dependencies file for hsipc_jasmin.
# This may be replaced when dependencies are built.
