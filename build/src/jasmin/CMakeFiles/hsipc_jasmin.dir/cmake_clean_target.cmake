file(REMOVE_RECURSE
  "libhsipc_jasmin.a"
)
