file(REMOVE_RECURSE
  "CMakeFiles/hsipc_jasmin.dir/paths.cc.o"
  "CMakeFiles/hsipc_jasmin.dir/paths.cc.o.d"
  "libhsipc_jasmin.a"
  "libhsipc_jasmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsipc_jasmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
