file(REMOVE_RECURSE
  "CMakeFiles/hsipc_ucode.dir/microcode.cc.o"
  "CMakeFiles/hsipc_ucode.dir/microcode.cc.o.d"
  "libhsipc_ucode.a"
  "libhsipc_ucode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsipc_ucode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
