# Empty compiler generated dependencies file for hsipc_ucode.
# This may be replaced when dependencies are built.
