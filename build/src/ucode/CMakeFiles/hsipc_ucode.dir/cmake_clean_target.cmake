file(REMOVE_RECURSE
  "libhsipc_ucode.a"
)
