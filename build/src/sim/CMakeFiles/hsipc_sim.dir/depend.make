# Empty dependencies file for hsipc_sim.
# This may be replaced when dependencies are built.
