file(REMOVE_RECURSE
  "libhsipc_sim.a"
)
