file(REMOVE_RECURSE
  "CMakeFiles/hsipc_sim.dir/kernel/ipc_sim.cc.o"
  "CMakeFiles/hsipc_sim.dir/kernel/ipc_sim.cc.o.d"
  "CMakeFiles/hsipc_sim.dir/node/costs.cc.o"
  "CMakeFiles/hsipc_sim.dir/node/costs.cc.o.d"
  "CMakeFiles/hsipc_sim.dir/node/processor.cc.o"
  "CMakeFiles/hsipc_sim.dir/node/processor.cc.o.d"
  "libhsipc_sim.a"
  "libhsipc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsipc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
