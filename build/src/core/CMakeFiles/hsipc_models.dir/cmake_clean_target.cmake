file(REMOVE_RECURSE
  "libhsipc_models.a"
)
