# Empty dependencies file for hsipc_models.
# This may be replaced when dependencies are built.
