file(REMOVE_RECURSE
  "CMakeFiles/hsipc_models.dir/models/contention.cc.o"
  "CMakeFiles/hsipc_models.dir/models/contention.cc.o.d"
  "CMakeFiles/hsipc_models.dir/models/local_model.cc.o"
  "CMakeFiles/hsipc_models.dir/models/local_model.cc.o.d"
  "CMakeFiles/hsipc_models.dir/models/mva.cc.o"
  "CMakeFiles/hsipc_models.dir/models/mva.cc.o.d"
  "CMakeFiles/hsipc_models.dir/models/nonlocal_model.cc.o"
  "CMakeFiles/hsipc_models.dir/models/nonlocal_model.cc.o.d"
  "CMakeFiles/hsipc_models.dir/models/offered_load.cc.o"
  "CMakeFiles/hsipc_models.dir/models/offered_load.cc.o.d"
  "CMakeFiles/hsipc_models.dir/models/processing_times.cc.o"
  "CMakeFiles/hsipc_models.dir/models/processing_times.cc.o.d"
  "CMakeFiles/hsipc_models.dir/models/solution.cc.o"
  "CMakeFiles/hsipc_models.dir/models/solution.cc.o.d"
  "libhsipc_models.a"
  "libhsipc_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsipc_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
