
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/models/contention.cc" "src/core/CMakeFiles/hsipc_models.dir/models/contention.cc.o" "gcc" "src/core/CMakeFiles/hsipc_models.dir/models/contention.cc.o.d"
  "/root/repo/src/core/models/local_model.cc" "src/core/CMakeFiles/hsipc_models.dir/models/local_model.cc.o" "gcc" "src/core/CMakeFiles/hsipc_models.dir/models/local_model.cc.o.d"
  "/root/repo/src/core/models/mva.cc" "src/core/CMakeFiles/hsipc_models.dir/models/mva.cc.o" "gcc" "src/core/CMakeFiles/hsipc_models.dir/models/mva.cc.o.d"
  "/root/repo/src/core/models/nonlocal_model.cc" "src/core/CMakeFiles/hsipc_models.dir/models/nonlocal_model.cc.o" "gcc" "src/core/CMakeFiles/hsipc_models.dir/models/nonlocal_model.cc.o.d"
  "/root/repo/src/core/models/offered_load.cc" "src/core/CMakeFiles/hsipc_models.dir/models/offered_load.cc.o" "gcc" "src/core/CMakeFiles/hsipc_models.dir/models/offered_load.cc.o.d"
  "/root/repo/src/core/models/processing_times.cc" "src/core/CMakeFiles/hsipc_models.dir/models/processing_times.cc.o" "gcc" "src/core/CMakeFiles/hsipc_models.dir/models/processing_times.cc.o.d"
  "/root/repo/src/core/models/solution.cc" "src/core/CMakeFiles/hsipc_models.dir/models/solution.cc.o" "gcc" "src/core/CMakeFiles/hsipc_models.dir/models/solution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hsipc_gtpn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsipc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
