file(REMOVE_RECURSE
  "CMakeFiles/hsipc_gtpn.dir/gtpn/analyzer.cc.o"
  "CMakeFiles/hsipc_gtpn.dir/gtpn/analyzer.cc.o.d"
  "CMakeFiles/hsipc_gtpn.dir/gtpn/export.cc.o"
  "CMakeFiles/hsipc_gtpn.dir/gtpn/export.cc.o.d"
  "CMakeFiles/hsipc_gtpn.dir/gtpn/markov.cc.o"
  "CMakeFiles/hsipc_gtpn.dir/gtpn/markov.cc.o.d"
  "CMakeFiles/hsipc_gtpn.dir/gtpn/net.cc.o"
  "CMakeFiles/hsipc_gtpn.dir/gtpn/net.cc.o.d"
  "CMakeFiles/hsipc_gtpn.dir/gtpn/simulator.cc.o"
  "CMakeFiles/hsipc_gtpn.dir/gtpn/simulator.cc.o.d"
  "CMakeFiles/hsipc_gtpn.dir/gtpn/tokengame.cc.o"
  "CMakeFiles/hsipc_gtpn.dir/gtpn/tokengame.cc.o.d"
  "libhsipc_gtpn.a"
  "libhsipc_gtpn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsipc_gtpn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
