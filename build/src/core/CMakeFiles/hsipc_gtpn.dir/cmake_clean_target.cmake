file(REMOVE_RECURSE
  "libhsipc_gtpn.a"
)
