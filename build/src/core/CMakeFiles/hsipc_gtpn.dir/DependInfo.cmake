
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gtpn/analyzer.cc" "src/core/CMakeFiles/hsipc_gtpn.dir/gtpn/analyzer.cc.o" "gcc" "src/core/CMakeFiles/hsipc_gtpn.dir/gtpn/analyzer.cc.o.d"
  "/root/repo/src/core/gtpn/export.cc" "src/core/CMakeFiles/hsipc_gtpn.dir/gtpn/export.cc.o" "gcc" "src/core/CMakeFiles/hsipc_gtpn.dir/gtpn/export.cc.o.d"
  "/root/repo/src/core/gtpn/markov.cc" "src/core/CMakeFiles/hsipc_gtpn.dir/gtpn/markov.cc.o" "gcc" "src/core/CMakeFiles/hsipc_gtpn.dir/gtpn/markov.cc.o.d"
  "/root/repo/src/core/gtpn/net.cc" "src/core/CMakeFiles/hsipc_gtpn.dir/gtpn/net.cc.o" "gcc" "src/core/CMakeFiles/hsipc_gtpn.dir/gtpn/net.cc.o.d"
  "/root/repo/src/core/gtpn/simulator.cc" "src/core/CMakeFiles/hsipc_gtpn.dir/gtpn/simulator.cc.o" "gcc" "src/core/CMakeFiles/hsipc_gtpn.dir/gtpn/simulator.cc.o.d"
  "/root/repo/src/core/gtpn/tokengame.cc" "src/core/CMakeFiles/hsipc_gtpn.dir/gtpn/tokengame.cc.o" "gcc" "src/core/CMakeFiles/hsipc_gtpn.dir/gtpn/tokengame.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsipc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
