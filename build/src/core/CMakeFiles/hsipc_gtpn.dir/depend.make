# Empty dependencies file for hsipc_gtpn.
# This may be replaced when dependencies are built.
