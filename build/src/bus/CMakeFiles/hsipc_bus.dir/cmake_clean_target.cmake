file(REMOVE_RECURSE
  "libhsipc_bus.a"
)
