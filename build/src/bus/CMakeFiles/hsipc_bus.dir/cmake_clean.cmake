file(REMOVE_RECURSE
  "CMakeFiles/hsipc_bus.dir/arbiter.cc.o"
  "CMakeFiles/hsipc_bus.dir/arbiter.cc.o.d"
  "CMakeFiles/hsipc_bus.dir/queue_ops.cc.o"
  "CMakeFiles/hsipc_bus.dir/queue_ops.cc.o.d"
  "CMakeFiles/hsipc_bus.dir/signals.cc.o"
  "CMakeFiles/hsipc_bus.dir/signals.cc.o.d"
  "CMakeFiles/hsipc_bus.dir/smart_bus.cc.o"
  "CMakeFiles/hsipc_bus.dir/smart_bus.cc.o.d"
  "CMakeFiles/hsipc_bus.dir/timing.cc.o"
  "CMakeFiles/hsipc_bus.dir/timing.cc.o.d"
  "libhsipc_bus.a"
  "libhsipc_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsipc_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
