# Empty compiler generated dependencies file for hsipc_bus.
# This may be replaced when dependencies are built.
