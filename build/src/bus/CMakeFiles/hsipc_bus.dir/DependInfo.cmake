
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bus/arbiter.cc" "src/bus/CMakeFiles/hsipc_bus.dir/arbiter.cc.o" "gcc" "src/bus/CMakeFiles/hsipc_bus.dir/arbiter.cc.o.d"
  "/root/repo/src/bus/queue_ops.cc" "src/bus/CMakeFiles/hsipc_bus.dir/queue_ops.cc.o" "gcc" "src/bus/CMakeFiles/hsipc_bus.dir/queue_ops.cc.o.d"
  "/root/repo/src/bus/signals.cc" "src/bus/CMakeFiles/hsipc_bus.dir/signals.cc.o" "gcc" "src/bus/CMakeFiles/hsipc_bus.dir/signals.cc.o.d"
  "/root/repo/src/bus/smart_bus.cc" "src/bus/CMakeFiles/hsipc_bus.dir/smart_bus.cc.o" "gcc" "src/bus/CMakeFiles/hsipc_bus.dir/smart_bus.cc.o.d"
  "/root/repo/src/bus/timing.cc" "src/bus/CMakeFiles/hsipc_bus.dir/timing.cc.o" "gcc" "src/bus/CMakeFiles/hsipc_bus.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsipc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
