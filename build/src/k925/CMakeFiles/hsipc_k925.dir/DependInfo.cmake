
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/k925/kernel.cc" "src/k925/CMakeFiles/hsipc_k925.dir/kernel.cc.o" "gcc" "src/k925/CMakeFiles/hsipc_k925.dir/kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bus/CMakeFiles/hsipc_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsipc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
