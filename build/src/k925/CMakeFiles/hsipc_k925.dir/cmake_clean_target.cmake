file(REMOVE_RECURSE
  "libhsipc_k925.a"
)
