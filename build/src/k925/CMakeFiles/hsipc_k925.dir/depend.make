# Empty dependencies file for hsipc_k925.
# This may be replaced when dependencies are built.
