file(REMOVE_RECURSE
  "CMakeFiles/hsipc_k925.dir/kernel.cc.o"
  "CMakeFiles/hsipc_k925.dir/kernel.cc.o.d"
  "libhsipc_k925.a"
  "libhsipc_k925.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsipc_k925.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
