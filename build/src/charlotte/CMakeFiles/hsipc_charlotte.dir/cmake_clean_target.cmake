file(REMOVE_RECURSE
  "libhsipc_charlotte.a"
)
