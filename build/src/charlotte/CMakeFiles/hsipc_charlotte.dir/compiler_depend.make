# Empty compiler generated dependencies file for hsipc_charlotte.
# This may be replaced when dependencies are built.
