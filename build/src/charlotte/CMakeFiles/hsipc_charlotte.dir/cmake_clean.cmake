file(REMOVE_RECURSE
  "CMakeFiles/hsipc_charlotte.dir/links.cc.o"
  "CMakeFiles/hsipc_charlotte.dir/links.cc.o.d"
  "libhsipc_charlotte.a"
  "libhsipc_charlotte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsipc_charlotte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
