/**
 * @file
 * A tour of the 925 IPC semantics (chapter 4) on the functional
 * kernel: the editor/file-server scenario of Figure 4.2, executed for
 * real — services, remote-invocation send with an enclosed memory
 * reference, memoryMove, reply, and a disk interrupt arriving through
 * activate — with the kernel's queue operations running on the
 * appendix-A microcoded smart-memory controller.
 */

#include <cstdio>
#include <cstring>

#include "k925/kernel.hh"
#include "ucode/microcode.hh"

using namespace hsipc;
using namespace hsipc::k925;

namespace
{

Message
msg(const char *text)
{
    Message m;
    std::strncpy(reinterpret_cast<char *>(m.data.data()), text,
                 messageBytes - 1);
    return m;
}

} // namespace

int
main()
{
    Kernel kernel;
    // Run every kernel queue operation through real microcode.
    ucode::MicrocodedController controller(kernel.sharedMemory());
    kernel.setController(controller);

    // --- Cast of Figure 4.2 -------------------------------------------
    const TaskId editor = kernel.createTask("editor");
    const TaskId file_server = kernel.createTask("file-server");
    const ServiceId fs = kernel.createService(file_server);
    kernel.offer(file_server, fs);

    // The editor's page buffer sits in its own address space.
    auto &editor_mem = kernel.userMemory(editor);
    const std::uint16_t page_buf = 256, page_len = 128;

    // --- The file server waits for work --------------------------------
    Envelope request;
    kernel.receive(file_server, [&](const Envelope &e) {
        request = e;
        std::printf("file-server: got \"%s\" from task %d "
                    "(memory ref: %u bytes at +%u)\n",
                    reinterpret_cast<const char *>(e.msg.data.data()),
                    e.sender, e.msg.ref.size, e.msg.ref.offset);
    });
    std::printf("editor state before send: computing; file-server: "
                "%s\n",
                kernel.taskState(file_server) == TaskState::Stopped
                    ? "stopped (waiting)"
                    : "computing");

    // --- The editor asks for a file page -------------------------------
    // It encloses a writable window of its address space; the server
    // will deposit the page there with memory moves (§4.2.1).
    Message req = msg("read page 7 of /etc/motd");
    req.hasRef = true;
    req.ref = MemoryRef{page_buf, page_len, true, true};

    bool done = false;
    kernel.sendRemoteInvocation(editor, fs, req, [&](const Message &r) {
        std::printf("editor: reply \"%s\"\n",
                    reinterpret_cast<const char *>(r.data.data()));
        done = true;
    });
    std::printf("editor is now %s (blocking remote invocation)\n",
                kernel.taskState(editor) == TaskState::Stopped
                    ? "stopped"
                    : "running?!");

    // --- The server satisfies the request ------------------------------
    // "Disk data" arrives as an interrupt mapped onto IPC: the driver
    // offers an interrupt service and its handler activates it.
    const TaskId driver = kernel.createTask("disk-driver");
    const ServiceId disk_done = kernel.createService(driver);
    kernel.offer(driver, disk_done);
    kernel.installHandler(driver, /*irq=*/3, [&]() {
        kernel.activate(disk_done, msg("sector 7 in core"));
    });
    kernel.receive(driver, [&](const Envelope &e) {
        std::printf("disk-driver: interrupt service delivered \"%s\"\n",
                    reinterpret_cast<const char *>(e.msg.data.data()));
    });
    kernel.raiseInterrupt(3);

    // The server writes the page into the editor's buffer through the
    // enclosed reference, then replies, revoking its rights.
    std::uint8_t page[page_len];
    for (int i = 0; i < page_len; ++i)
        page[i] = static_cast<std::uint8_t>('A' + i % 26);
    kernel.moveToUser(file_server, request, 0, page, page_len);
    kernel.reply(file_server, request, msg("page delivered"));

    std::printf("editor buffer now starts with: %.8s...\n",
                reinterpret_cast<const char *>(&editor_mem[page_buf]));
    std::printf("rights after reply: memoryMove -> %s\n",
                kernel.moveToUser(file_server, request, 0, page, 4) ==
                        K925Status::BadEnvelope
                    ? "revoked (BadEnvelope)"
                    : "unexpectedly allowed");

    // --- Peek at the chapter-5 machinery underneath ---------------------
    std::printf("\nshared-memory work lists (TCB addresses are real "
                "list nodes):\n  computation list:");
    for (TaskId t : kernel.computationList())
        std::printf(" %s", kernel.taskName(t).c_str());
    std::printf("\n  free kernel buffers: %d\n",
                kernel.freeBufferCount());
    std::printf("microcode cycles spent on kernel queue ops: %ld\n",
                controller.sequencer().totalCycles());
    return done ? 0 : 1;
}
