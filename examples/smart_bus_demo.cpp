/**
 * @file
 * Drive the smart bus (chapter 5) with three units — the host, the
 * message coprocessor, and a network interface — through a realistic
 * message-delivery sequence, running the memory side on the
 * microprogrammed controller of Appendix A.
 *
 * The scenario mirrors §5.1: the MP takes a kernel buffer from its
 * free list (First), block-writes a 40-byte message into it, enqueues
 * it on a service queue, and the NIC (at the highest bus priority)
 * interrupts the stream with its own atomic queue work — showing the
 * preempt-and-resume behaviour that distinguishes the smart bus from
 * buses that lock for whole block transfers.
 */

#include <cstdio>

#include "bus/memory.hh"
#include "bus/queue_ops.hh"
#include "bus/smart_bus.hh"
#include "ucode/microcode.hh"

int
main()
{
    using namespace hsipc::bus;
    using namespace hsipc::ucode;

    SimMemory mem(8192);
    MicrocodedController controller(mem);
    SmartBus bus(mem);
    bus.setController(controller);

    const int host = bus.addUnit("Host", 2);
    const int mp = bus.addUnit("MP", 3);
    const int nic = bus.addUnit("NIC", 7);

    // Well-known list heads (§5.1): kernel-buffer free list at 2,
    // a service queue at 4, the communication list at 6.
    const Addr kb_free = 2, service_q = 4, comm_list = 6;

    // Seed the kernel-buffer free list with four 64-byte buffers.
    for (Addr b = 0; b < 4; ++b)
        QueueOps::enqueue(mem, kb_free,
                          static_cast<Addr>(1024 + 64 * b));

    // 1. The MP grabs a free kernel buffer.
    const auto get_buf = bus.postFirst(mp, kb_free);
    bus.run();
    const Addr buf = bus.result(get_buf).value;
    std::printf("MP acquired kernel buffer 0x%04x in %.2f us\n", buf,
                bus.result(get_buf).durationUs());

    // 2. The MP block-writes a 40-byte message into the buffer
    //    (past the 2-byte link word)...
    std::vector<std::uint8_t> msg(40);
    for (int i = 0; i < 40; ++i)
        msg[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>('A' + i % 26);
    const auto blk =
        bus.postBlockWrite(mp, static_cast<Addr>(buf + 2), msg);
    bus.step(); // block transfer request
    bus.step(); // first streaming grant

    // 3. ...while the NIC interrupts with an enqueue on the
    //    communication list and the host reads a word.
    const auto nic_op = bus.postEnqueue(nic, comm_list, 2048);
    const auto host_op = bus.postRead(host, service_q);
    const auto enq = bus.postEnqueue(mp, service_q, buf);
    bus.run();

    std::printf("NIC enqueue finished at %.2f us (stream preempted "
                "%ld time(s))\n",
                bus.result(nic_op).endEdge * edgeUs,
                bus.preemptionCount());
    std::printf("block write finished at %.2f us (duration %.2f us)\n",
                bus.result(blk).endEdge * edgeUs,
                bus.result(blk).durationUs());
    std::printf("message enqueued on the service at %.2f us\n",
                bus.result(enq).endEdge * edgeUs);
    (void)host_op;

    // 4. Show the bus trace.
    std::printf("\nbus trace:\n");
    for (const BusTraceEntry &e : bus.trace()) {
        std::printf("  %7.2f us  %-6s %-22s %s\n", e.startEdge * edgeUs,
                    e.unit.c_str(), busCommandName(e.command).c_str(),
                    e.detail.c_str());
    }

    // 5. Verify the data structures ended up consistent.
    std::printf("\nservice queue now holds:");
    for (Addr a : QueueOps::toVector(mem, service_q))
        std::printf(" 0x%04x", a);
    std::printf("\nmicrocode executed %ld cycles total\n",
                controller.sequencer().totalCycles());
    return 0;
}
