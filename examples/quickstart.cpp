/**
 * @file
 * Quickstart: build a small Generalized Timed Petri Net, analyze it
 * exactly, and cross-check with Monte Carlo simulation.
 *
 * The net is the thesis' introductory example (Figure 6.6): a token
 * loops in P1 a geometric number of times (mean 20 time units), moves
 * to P2 through the measured transition T0, and returns after a
 * 5-unit delay.  The system's throughput is the usage of the resource
 * attached to T0.
 */

#include <cstdio>

#include "core/gtpn/analyzer.hh"
#include "core/gtpn/net.hh"
#include "core/gtpn/simulator.hh"

int
main()
{
    using namespace hsipc::gtpn;

    // 1. Describe the net.
    PetriNet net;
    const PlaceId p1 = net.addPlace("P1", 1);
    const PlaceId p2 = net.addPlace("P2");

    // T0: exit P1 with probability 1/20 per unit; carries the
    // throughput resource "Lambda".
    const TransId t0 = net.addTransition("T0", 1.0, 1.0 / 20.0,
                                         "Lambda");
    net.inputArc(p1, t0);
    net.outputArc(t0, p2);

    // T1: otherwise stay in P1 (the geometric-delay idiom, Fig 6.7).
    const TransId t1 = net.addTransition("T1", 1.0, 19.0 / 20.0);
    net.inputArc(p1, t1);
    net.outputArc(t1, p1);

    // T2: deterministic 5-unit return.
    const TransId t2 = net.addTransition("T2", 5.0, 1.0);
    net.inputArc(p2, t2);
    net.outputArc(t2, p1);
    (void)t1;
    (void)t2;

    // 2. Exact analysis: reachability graph + embedded Markov chain.
    const AnalyzerResult exact = analyze(net);
    std::printf("exact analysis: %zu states, throughput %.6f "
                "(expected %.6f)\n",
                exact.numStates, exact.usage("Lambda"), 1.0 / 25.0);

    // 3. Monte Carlo cross-check.
    SimOptions opts;
    opts.horizon = 200000;
    const SimResult sim = simulate(net, opts);
    std::printf("simulation:     throughput %.6f\n",
                sim.usage("Lambda"));

    // 4. Firing rates are also available per transition.
    std::printf("T0 firing rate: %.6f per time unit\n",
                exact.firingRate[static_cast<std::size_t>(t0)]);
    return 0;
}
