/**
 * @file
 * The motivating scenario of the thesis (Figure 4.2): an editor task
 * requests file pages from a file-server task through message
 * passing.
 *
 * The server-computation time per request comes from the Unix file
 * server cost model behind Table 3.7 (read of one page), so each
 * round trip is a realistic "open a conversation, read a page"
 * exchange.  The example runs the workload on architectures I and III
 * with the kernel simulator and shows how the message coprocessor and
 * the smart bus change page throughput and round-trip latency — the
 * end-to-end story the dissertation tells.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/models/offered_load.hh"
#include "prof/kernels.hh"
#include "sim/kernel/ipc_sim.hh"

int
main()
{
    using namespace hsipc;
    using namespace hsipc::models;
    using namespace hsipc::prof;

    // The editor reads 1K pages; the file server's computation per
    // page is Table 3.7's read model.
    const int page_bytes = 1024;
    const double service_us =
        unixReadModel().timeMs(page_bytes) * 1000.0;
    std::printf("file-server computation per %d-byte page: %.0f us\n",
                page_bytes, service_us);
    std::printf("offered load this represents on Arch I (local): "
                "%.3f\n\n",
                offeredLoad(Arch::I, true, service_us));

    TextTable t("Editor <-> file server (local node, kernel "
                "simulator)");
    t.header({"Editors", "Arch", "pages/sec", "round trip (ms)",
              "host util", "MP util"});
    for (int editors : {1, 2, 4}) {
        for (Arch a : {Arch::I, Arch::III}) {
            sim::Experiment e;
            e.arch = a;
            e.local = true;
            e.conversations = editors;
            e.computeUs = service_us;
            const sim::Outcome o = sim::runExperiment(e);
            t.row({std::to_string(editors),
                   a == Arch::I ? "I (uniprocessor)" : "III (smart bus)",
                   TextTable::num(o.throughputPerSec, 1),
                   TextTable::num(o.meanRoundTripUs / 1000.0, 2),
                   TextTable::num(o.hostUtil, 2),
                   TextTable::num(o.mpUtil, 2)});
        }
    }
    std::printf("%s", t.render().c_str());

    // And the profiling view: where does the kernel time go when the
    // editor talks to the server on a 925-class kernel?
    std::printf("\nkernel-time breakdown of one round trip "
                "(925-class kernel, Table 3.3):\n");
    const ProfileResult prof = runKernelProfile(spec925());
    for (const ActivityRow &row : prof.rows) {
        std::printf("  %-55s %5.2f ms (%4.1f%%)\n",
                    row.activity.c_str(), row.timeMs, row.percent);
    }
    return 0;
}
