/**
 * @file
 * The Figure 1.1 distributed system, end to end: two nodes on a
 * 4 Mb/s token ring, each running clients *and* servers (the mixed
 * workload the thesis' models could not express), on the smart-bus
 * architecture — with the simulator's per-activity measurement
 * showing where each round trip's time goes.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/kernel/ipc_sim.hh"

int
main()
{
    using namespace hsipc;
    using namespace hsipc::models;

    sim::Experiment e;
    e.arch = Arch::III;   // message coprocessor + smart bus
    e.mixedLocal = 2;     // an editor/file-server pair on each node
    e.mixedRemote = 2;    // plus cross-node print/mail traffic
    e.computeUs = 1477;   // one 1K file-page read per request
    e.useTokenRing = true;
    e.ringMbps = 4.0;
    const sim::Outcome o = sim::runExperiment(e);

    std::printf("Two smart-bus nodes, 4 conversations (2 local + 2 "
                "crossing the ring):\n\n");
    TextTable t("Steady state");
    t.header({"Metric", "Value"});
    t.row({"Total throughput", TextTable::num(o.throughputPerSec, 1) +
                                   " msgs/s"});
    t.row({"  local conversations",
           TextTable::num(o.localThroughputPerSec, 1) + " msgs/s @ " +
               TextTable::num(o.localMeanRtUs / 1000.0, 2) + " ms"});
    t.row({"  remote conversations",
           TextTable::num(o.remoteThroughputPerSec, 1) + " msgs/s @ " +
               TextTable::num(o.remoteMeanRtUs / 1000.0, 2) + " ms"});
    t.row({"Round trip p50 / p95",
           TextTable::num(o.rtP50Us / 1000.0, 2) + " / " +
               TextTable::num(o.rtP95Us / 1000.0, 2) + " ms"});
    t.row({"Host utilization", TextTable::num(o.hostUtil, 2)});
    t.row({"MP utilization", TextTable::num(o.mpUtil, 2)});
    t.row({"Ring utilization", TextTable::num(o.ringUtil, 3)});
    t.row({"Mean token wait",
           TextTable::num(o.ringTokenWaitUs, 1) + " us"});
    std::printf("%s\n", t.render().c_str());

    std::printf("where a round trip's kernel time goes (us per "
                "completed round trip):\n");
    for (const auto &[name, us] : o.activityUsPerRoundTrip) {
        if (name != "compute")
            std::printf("  %-16s %8.1f\n", name.c_str(), us);
    }
    return 0;
}
