/**
 * @file
 * Compare the four node architectures on a workload of your choosing,
 * using both evaluation engines: the exact GTPN models (chapter 6)
 * and the event-driven kernel simulator (the chapter-4 implementation
 * stand-in).
 *
 * Usage: architecture_shootout [conversations] [computeUs] [local|nonlocal]
 * Defaults: 3 conversations, 1710 us of server computation, local.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table.hh"
#include "core/models/offered_load.hh"
#include "core/models/solution.hh"
#include "sim/kernel/ipc_sim.hh"

int
main(int argc, char **argv)
{
    using namespace hsipc;
    using namespace hsipc::models;

    const int conversations = argc > 1 ? std::atoi(argv[1]) : 3;
    const double compute_us = argc > 2 ? std::atof(argv[2]) : 1710.0;
    const bool local = argc > 3 ? std::strcmp(argv[3], "nonlocal") != 0
                                : true;
    if (conversations < 1 || conversations > 6 || compute_us < 0) {
        std::fprintf(stderr,
                     "usage: %s [conversations 1-6] [computeUs >= 0] "
                     "[local|nonlocal]\n",
                     argv[0]);
        return 1;
    }

    std::printf("workload: %d conversations, X = %.0f us, %s "
                "(offered load %.3f on Arch I)\n\n",
                conversations, compute_us,
                local ? "local" : "non-local",
                offeredLoad(Arch::I, local, compute_us));

    TextTable t("Architecture shootout: messages/sec");
    t.header({"Architecture", "GTPN model", "Kernel simulator",
              "model/sim"});
    for (Arch a : {Arch::I, Arch::II, Arch::III, Arch::IV}) {
        const double model =
            (local ? solveLocal(a, conversations, compute_us)
                         .throughputPerUs
                   : solveNonlocal(a, conversations, compute_us)
                         .throughputPerUs) *
            1e6;

        sim::Experiment e;
        e.arch = a;
        e.local = local;
        e.conversations = conversations;
        e.computeUs = compute_us;
        const sim::Outcome o = sim::runExperiment(e);

        t.row({archName(a), TextTable::num(model, 1),
               TextTable::num(o.throughputPerSec, 1),
               TextTable::num(model / o.throughputPerSec, 3)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nThe thesis' conclusion to look for: II beats I once "
                "several conversations\nkeep both processors busy, III "
                "beats II thanks to the smart-bus primitives,\nand IV "
                "adds little because memory access is not the "
                "bottleneck (chapter 7).\n");
    return 0;
}
