#!/usr/bin/env python3
"""Unit tests for report.py (registered as ctest `report_unit`).

Covers the resampling/sparkline primitives at their edges, timeline
document validation, the steady-state verdict wording for each of the
three outcomes, and end-to-end rendering of both the terminal and the
self-contained HTML dashboard (via main(), exercising exit codes).
"""

import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import report  # noqa: E402


def doc(**overrides):
    d = {
        "intervalUs": 5000.0,
        "horizonUs": 20000.0,
        "warmupUs": 5000.0,
        "stats": {"enabled": True, "transientPolluted": False,
                  "insufficientData": False, "truncationUs": 5000.0,
                  "batches": 12, "throughputPerSec": 950.0,
                  "throughputCi95PerSec": 12.5, "meanRtUs": 2670.0,
                  "rtCi95Us": 40.0},
        "counters": {"ipc.allTrips": [0.0, 3.0, 4.0, 4.0],
                     "net.retransmissions": [0.0, 0.0, 1.0, 0.0]},
        "gauges": {"util.n0.busTcb": [0.10, 0.13, 0.14, 0.13]},
    }
    d.update(overrides)
    return d


class PrimitivesTest(unittest.TestCase):
    def test_sparkline_handles_empty_and_flat_series(self):
        self.assertEqual(report.sparkline([]), "")
        flat = report.sparkline([2.0, 2.0, 2.0])
        self.assertEqual(flat, report.BLOCK_CHARS[0] * 3)

    def test_sparkline_maps_extremes_to_extreme_glyphs(self):
        line = report.sparkline([0.0, 1.0])
        self.assertEqual(line[0], report.BLOCK_CHARS[0])
        self.assertEqual(line[-1], report.BLOCK_CHARS[-1])

    def test_resample_preserves_short_series_verbatim(self):
        self.assertEqual(report.resample([1.0, 2.0], 72), [1.0, 2.0])

    def test_resample_averages_down_to_width(self):
        out = report.resample([0.0, 2.0, 4.0, 6.0], 2)
        self.assertEqual(out, [1.0, 5.0])

    def test_fmt_integers_and_reals(self):
        self.assertEqual(report.fmt(14.0), "14")
        self.assertEqual(report.fmt(0.1020384), "0.102")


def profile_doc(**overrides):
    d = {
        "engineProfile": 1,
        "enabled": True,
        "sampleEvery": 256,
        "sampledEvents": 40,
        "queue": {"pushes": 10240, "pops": 10200, "comparisons": 81000,
                  "maxHeapSize": 96, "remainingAtEnd": 40},
        "callbacks": {"spillConstructs": 12, "oversizeConstructs": 0},
        "dwellUs": {"count": 40, "sum": 4000.0, "min": 10.0,
                    "max": 500.0, "p50": 90.0, "p95": 400.0,
                    "p99": 480.0},
        "heapDepth": {"count": 40, "sum": 3000.0, "min": 1.0,
                      "max": 96.0, "p50": 70.0, "p95": 95.0,
                      "p99": 96.0},
        "tracks": [
            {"name": "sim", "events": 200, "sampled": 1},
            {"name": "n0.cpu0", "events": 10000, "sampled": 39,
             "wallNs": {"count": 39, "sum": 9000.0, "min": 80.0,
                        "max": 900.0, "p50": 200.0, "p95": 700.0,
                        "p99": 880.0}},
        ],
        "edges": [
            {"src": "n0.cpu0", "dst": "wire", "count": 500,
             "zeroDelta": 0, "minPositiveDeltaUs": 100.0,
             "meanDeltaUs": 100.0},
            {"src": "n0.bus", "dst": "n0.bus", "count": 80,
             "zeroDelta": 80, "minPositiveDeltaUs": 0.0,
             "meanDeltaUs": 0.0},
        ],
    }
    d.update(overrides)
    return d


def write_json(d, path, payload):
    full = os.path.join(d, path)
    with open(full, "w") as f:
        if isinstance(payload, str):
            f.write(payload)
        else:
            json.dump(payload, f)
    return full


class LoadTest(unittest.TestCase):
    def test_rejects_non_timeline_documents(self):
        with tempfile.TemporaryDirectory() as d:
            path = write_json(d, "bench.json",
                              {"bench": "b", "scalars": {}})
            with self.assertRaises(ValueError):
                report.load(path)

    def test_rejects_profile_document_without_flag(self):
        with tempfile.TemporaryDirectory() as d:
            path = write_json(d, "prof.json", profile_doc())
            with self.assertRaisesRegex(ValueError, "--profile"):
                report.load(path)

    def test_rejects_truncated_series(self):
        with tempfile.TemporaryDirectory() as d:
            bad = doc()
            bad["counters"]["ipc.allTrips"] = [0.0, None, 4.0]
            path = write_json(d, "t.json", bad)
            with self.assertRaisesRegex(ValueError, "ipc.allTrips"):
                report.load(path)
            bad["counters"] = "oops"
            path = write_json(d, "t2.json", bad)
            with self.assertRaisesRegex(ValueError, "counters"):
                report.load(path)
            path = write_json(d, "t3.json", [1, 2, 3])
            with self.assertRaisesRegex(ValueError, "not an object"):
                report.load(path)


class LoadProfileTest(unittest.TestCase):
    def check_raises(self, payload, pattern):
        with tempfile.TemporaryDirectory() as d:
            path = write_json(d, "p.json", payload)
            with self.assertRaisesRegex(ValueError, pattern):
                report.load_profile(path)

    def test_accepts_well_formed_profile(self):
        with tempfile.TemporaryDirectory() as d:
            path = write_json(d, "p.json", profile_doc())
            self.assertEqual(report.load_profile(path)["sampleEvery"],
                             256)

    def test_rejects_timeline_and_wrong_schema(self):
        self.check_raises(doc(), "engineProfile")
        self.check_raises(profile_doc(engineProfile=2),
                          "schema version")

    def test_rejects_truncated_sections(self):
        self.check_raises(profile_doc(queue={"pushes": 1}),
                          "queue.pops")
        self.check_raises(profile_doc(tracks=[{"name": "sim"}]),
                          "tracks")
        self.check_raises(profile_doc(edges=[{"src": "a"}]), "edges")
        self.check_raises(profile_doc(edges="oops"), "edges")


class VerdictTest(unittest.TestCase):
    def render(self, d):
        out = io.StringIO()
        report.render_stats_text(d, out)
        return out.getvalue()

    def test_steady_verdict_reports_truncation_and_cis(self):
        text = self.render(doc())
        self.assertIn("steady after 5000 us", text)
        self.assertIn("950 /s", text)
        self.assertIn("12 batches", text)

    def test_polluted_verdict_is_loud(self):
        d = doc()
        d["stats"]["transientPolluted"] = True
        d["stats"]["truncationUs"] = 15000.0
        self.assertIn("TRANSIENT POLLUTED", self.render(d))

    def test_insufficient_data_verdict(self):
        d = doc()
        d["stats"]["insufficientData"] = True
        self.assertIn("too short", self.render(d))

    def test_disabled_stats_render_nothing(self):
        d = doc()
        d["stats"]["enabled"] = False
        self.assertEqual(self.render(d), "")
        del d["stats"]
        self.assertEqual(self.render(d), "")


class RenderTest(unittest.TestCase):
    def test_terminal_render_lists_every_series_with_integral(self):
        out = io.StringIO()
        report.render_text(["t.json"], [doc()], None, 72, out)
        text = out.getvalue()
        self.assertIn("ipc.allTrips", text)
        self.assertIn("util.n0.busTcb", text)
        self.assertIn("integral 11", text)  # 0+3+4+4
        self.assertIn("4 bins x 5000 us", text)

    def test_only_prefix_filters_series(self):
        out = io.StringIO()
        report.render_text(["t.json"], [doc()], "net.", 72, out)
        text = out.getvalue()
        self.assertIn("net.retransmissions", text)
        self.assertNotIn("ipc.allTrips", text)

    def test_svg_chart_marks_warmup_and_truncation(self):
        svg = report.svg_chart([1.0, 2.0, 3.0, 4.0], 5000.0,
                               5000.0, 10000.0)
        self.assertIn('class="warmup"', svg)
        self.assertIn('class="trunc"', svg)
        self.assertIn("<polyline", svg)
        # Markers at or past the horizon are dropped, not drawn.
        bare = report.svg_chart([1.0], 5000.0, 5000.0, 0.0)
        self.assertNotIn("<line", bare)


class ProfileRenderTest(unittest.TestCase):
    def render(self, d):
        out = io.StringIO()
        report.render_profile_text(["p.json"], [d], out)
        return out.getvalue()

    def test_renders_queue_tracks_and_lookahead(self):
        text = self.render(profile_doc())
        self.assertIn("1-in-256 wall sampling", text)
        self.assertIn("10240 pushes", text)
        self.assertIn("n0.cpu0", text)
        self.assertIn("wall(ns)", text)
        self.assertIn("n0.cpu0 -> wire: 500 schedules", text)
        self.assertIn("lookahead 100 us", text)
        self.assertIn("NO LOOKAHEAD", text)
        self.assertIn("warning: 1 edge(s)", text)

    def test_edges_sorted_by_lookahead_with_zeros_last(self):
        text = self.render(profile_doc())
        self.assertLess(text.index("n0.cpu0 -> wire"),
                        text.index("n0.bus -> n0.bus"))

    def test_profile_without_edges_renders_placeholder(self):
        text = self.render(profile_doc(edges=[]))
        self.assertIn("(none recorded)", text)
        self.assertNotIn("warning:", text)

    def test_queue_kind_defaults_to_heap_for_old_documents(self):
        text = self.render(profile_doc())
        self.assertIn("queue (heap):", text)
        self.assertNotIn("ladder:", text)
        self.assertNotIn("batches:", text)

    def test_renders_ladder_counters_and_batches(self):
        d = profile_doc()
        d["queue"].update({"kind": "ladder", "batchCommits": 4,
                           "batchedEvents": 4096})
        d["ladder"] = {"topTransfers": 7, "rungSpawns": 128,
                       "bottomSorts": 50, "sortedEvents": 2400,
                       "maxBucket": 192}
        text = self.render(d)
        self.assertIn("queue (ladder):", text)
        self.assertIn("batches: 4 commits, 4096 events "
                      "(1024.0 events/commit)", text)
        self.assertIn("ladder: 7 top transfers, 128 rung spawns, "
                      "50 bottom sorts (2400 events), "
                      "max bucket 192", text)

    def test_unknown_ladder_counters_render_instead_of_failing(self):
        d = profile_doc()
        d["queue"]["kind"] = "ladder"
        d["ladder"] = {"topTransfers": 1, "futureCounter": 99,
                       "notANumber": "skip me"}
        text = self.render(d)
        self.assertIn("futureCounter=99", text)
        self.assertNotIn("notANumber", text)
        # Known-but-missing counters render as zero.
        self.assertIn("0 rung spawns", text)

    def test_ladder_document_loads_despite_extra_sections(self):
        with tempfile.TemporaryDirectory() as d:
            doc_ = profile_doc()
            doc_["queue"]["kind"] = "ladder"
            doc_["ladder"] = {"topTransfers": 7}
            path = write_json(d, "p.json", doc_)
            self.assertEqual(
                report.load_profile(path)["ladder"]["topTransfers"], 7)


class MainTest(unittest.TestCase):
    def test_end_to_end_terminal_and_html(self):
        with tempfile.TemporaryDirectory() as d:
            src = os.path.join(d, "timeline.json")
            with open(src, "w") as f:
                json.dump(doc(), f)
            self.assertEqual(report.main([src]), 0)
            html_out = os.path.join(d, "dash.html")
            self.assertEqual(report.main([src, "--html", html_out]), 0)
            with open(html_out) as f:
                page = f.read()
            self.assertIn("<svg", page)
            self.assertIn("ipc.allTrips", page)
            self.assertIn("steady after 5000 us", page)
            # Self-contained: no external scripts or stylesheets.
            self.assertNotIn("http://", page.replace("http://www.w3", ""))
            self.assertNotIn("<script", page)
            self.assertNotIn("<link", page)

    def test_profile_mode_end_to_end(self):
        with tempfile.TemporaryDirectory() as d:
            src = write_json(d, "prof.json", profile_doc())
            old = sys.stdout
            sys.stdout = io.StringIO()
            try:
                self.assertEqual(report.main([src, "--profile"]), 0)
                text = sys.stdout.getvalue()
            finally:
                sys.stdout = old
            self.assertIn("lookahead 100 us", text)

    def test_malformed_input_exits_nonzero(self):
        with tempfile.TemporaryDirectory() as d:
            bad = write_json(d, "bad.json", "{not json")
            truncated = write_json(d, "trunc.json",
                                   json.dumps(doc())[:80])
            old = sys.stderr
            sys.stderr = io.StringIO()
            try:
                self.assertEqual(report.main([bad]), 1)
                self.assertEqual(report.main([truncated]), 1)
                self.assertEqual(
                    report.main([os.path.join(d, "absent.json")]), 1)
                # Wrong mode for the document type: clear message,
                # no traceback, in both directions.
                prof = write_json(d, "p.json", profile_doc())
                tl = write_json(d, "t.json", doc())
                self.assertEqual(report.main([prof]), 1)
                self.assertEqual(report.main([tl, "--profile"]), 1)
                self.assertEqual(
                    report.main([prof, "--profile", "--html",
                                 os.path.join(d, "x.html")]), 1)
                err = sys.stderr.getvalue()
            finally:
                sys.stderr = old
            self.assertIn("--profile", err)
            self.assertNotIn("Traceback", err)


if __name__ == "__main__":
    unittest.main()
