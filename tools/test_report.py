#!/usr/bin/env python3
"""Unit tests for report.py (registered as ctest `report_unit`).

Covers the resampling/sparkline primitives at their edges, timeline
document validation, the steady-state verdict wording for each of the
three outcomes, and end-to-end rendering of both the terminal and the
self-contained HTML dashboard (via main(), exercising exit codes).
"""

import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import report  # noqa: E402


def doc(**overrides):
    d = {
        "intervalUs": 5000.0,
        "horizonUs": 20000.0,
        "warmupUs": 5000.0,
        "stats": {"enabled": True, "transientPolluted": False,
                  "insufficientData": False, "truncationUs": 5000.0,
                  "batches": 12, "throughputPerSec": 950.0,
                  "throughputCi95PerSec": 12.5, "meanRtUs": 2670.0,
                  "rtCi95Us": 40.0},
        "counters": {"ipc.allTrips": [0.0, 3.0, 4.0, 4.0],
                     "net.retransmissions": [0.0, 0.0, 1.0, 0.0]},
        "gauges": {"util.n0.busTcb": [0.10, 0.13, 0.14, 0.13]},
    }
    d.update(overrides)
    return d


class PrimitivesTest(unittest.TestCase):
    def test_sparkline_handles_empty_and_flat_series(self):
        self.assertEqual(report.sparkline([]), "")
        flat = report.sparkline([2.0, 2.0, 2.0])
        self.assertEqual(flat, report.BLOCK_CHARS[0] * 3)

    def test_sparkline_maps_extremes_to_extreme_glyphs(self):
        line = report.sparkline([0.0, 1.0])
        self.assertEqual(line[0], report.BLOCK_CHARS[0])
        self.assertEqual(line[-1], report.BLOCK_CHARS[-1])

    def test_resample_preserves_short_series_verbatim(self):
        self.assertEqual(report.resample([1.0, 2.0], 72), [1.0, 2.0])

    def test_resample_averages_down_to_width(self):
        out = report.resample([0.0, 2.0, 4.0, 6.0], 2)
        self.assertEqual(out, [1.0, 5.0])

    def test_fmt_integers_and_reals(self):
        self.assertEqual(report.fmt(14.0), "14")
        self.assertEqual(report.fmt(0.1020384), "0.102")


class LoadTest(unittest.TestCase):
    def test_rejects_non_timeline_documents(self):
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "bench.json")
            with open(path, "w") as f:
                json.dump({"bench": "b", "scalars": {}}, f)
            with self.assertRaises(ValueError):
                report.load(path)


class VerdictTest(unittest.TestCase):
    def render(self, d):
        out = io.StringIO()
        report.render_stats_text(d, out)
        return out.getvalue()

    def test_steady_verdict_reports_truncation_and_cis(self):
        text = self.render(doc())
        self.assertIn("steady after 5000 us", text)
        self.assertIn("950 /s", text)
        self.assertIn("12 batches", text)

    def test_polluted_verdict_is_loud(self):
        d = doc()
        d["stats"]["transientPolluted"] = True
        d["stats"]["truncationUs"] = 15000.0
        self.assertIn("TRANSIENT POLLUTED", self.render(d))

    def test_insufficient_data_verdict(self):
        d = doc()
        d["stats"]["insufficientData"] = True
        self.assertIn("too short", self.render(d))

    def test_disabled_stats_render_nothing(self):
        d = doc()
        d["stats"]["enabled"] = False
        self.assertEqual(self.render(d), "")
        del d["stats"]
        self.assertEqual(self.render(d), "")


class RenderTest(unittest.TestCase):
    def test_terminal_render_lists_every_series_with_integral(self):
        out = io.StringIO()
        report.render_text(["t.json"], [doc()], None, 72, out)
        text = out.getvalue()
        self.assertIn("ipc.allTrips", text)
        self.assertIn("util.n0.busTcb", text)
        self.assertIn("integral 11", text)  # 0+3+4+4
        self.assertIn("4 bins x 5000 us", text)

    def test_only_prefix_filters_series(self):
        out = io.StringIO()
        report.render_text(["t.json"], [doc()], "net.", 72, out)
        text = out.getvalue()
        self.assertIn("net.retransmissions", text)
        self.assertNotIn("ipc.allTrips", text)

    def test_svg_chart_marks_warmup_and_truncation(self):
        svg = report.svg_chart([1.0, 2.0, 3.0, 4.0], 5000.0,
                               5000.0, 10000.0)
        self.assertIn('class="warmup"', svg)
        self.assertIn('class="trunc"', svg)
        self.assertIn("<polyline", svg)
        # Markers at or past the horizon are dropped, not drawn.
        bare = report.svg_chart([1.0], 5000.0, 5000.0, 0.0)
        self.assertNotIn("<line", bare)


class MainTest(unittest.TestCase):
    def test_end_to_end_terminal_and_html(self):
        with tempfile.TemporaryDirectory() as d:
            src = os.path.join(d, "timeline.json")
            with open(src, "w") as f:
                json.dump(doc(), f)
            self.assertEqual(report.main([src]), 0)
            html_out = os.path.join(d, "dash.html")
            self.assertEqual(report.main([src, "--html", html_out]), 0)
            with open(html_out) as f:
                page = f.read()
            self.assertIn("<svg", page)
            self.assertIn("ipc.allTrips", page)
            self.assertIn("steady after 5000 us", page)
            # Self-contained: no external scripts or stylesheets.
            self.assertNotIn("http://", page.replace("http://www.w3", ""))
            self.assertNotIn("<script", page)
            self.assertNotIn("<link", page)

    def test_malformed_input_exits_nonzero(self):
        with tempfile.TemporaryDirectory() as d:
            bad = os.path.join(d, "bad.json")
            with open(bad, "w") as f:
                f.write("{not json")
            old = sys.stderr
            sys.stderr = io.StringIO()
            try:
                self.assertEqual(report.main([bad]), 1)
                self.assertEqual(
                    report.main([os.path.join(d, "absent.json")]), 1)
            finally:
                sys.stderr = old


if __name__ == "__main__":
    unittest.main()
