#!/usr/bin/env python3
"""Compare bench --json outputs against committed baselines.

Each bench binary, invoked with `--json <path>`, writes a document of
the form

    {"bench": name,
     "tables": [{"title": ..., "columns": [...], "rows": [[...]]}],
     "scalars": {name: value}}

This tool compares a current document (or a directory of them) against
a baseline and fails when any scalar or numeric table cell drifted by
more than the tolerance.  The simulator is deterministic (same seed,
same results to the last bit), so on identical code the comparison is
exact and the tolerance only has to absorb intentional-but-small
behavior changes; a real regression (e.g. a 20% slowdown) trips it
immediately.

Documents may carry a top-level "wall_ms" field: the bench's own
wall-clock self-timing.  Wall time depends on the machine, its load
and --jobs, so it is reported for information only and never gates
the comparison.

Timeline documents (written via `Experiment.timelineFile`, rendered
with tools/report.py) are dense per-bin series, not bench summaries:
cell-by-cell gating them would make every intentional change a
baseline churn.  Directory mode therefore skips any *.json whose name
contains "timeline" or "engine_profile" on either side — they are
committed for reference and rendering only, never compared (an engine
profile additionally carries machine-dependent wall-clock sketches).

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--tolerance 0.10]
    bench_compare.py --baseline-dir bench/baselines --current-dir DIR

In directory mode every *.json in the baseline directory must have a
counterpart with the same file name in the current directory.

Exit status: 0 when everything is within tolerance, 1 otherwise.
"""

import argparse
import json
import os
import sys


def is_timeline_name(name):
    """Timeline and engine-profile artifacts ride along in bench
    directories but are rendered (tools/report.py, with --profile for
    the latter), never gated: the profile's wall-clock sketches are
    machine-dependent by construction.  Matching "engine_profile", not
    "profile", keeps the table3_profiling bench gated."""
    base = os.path.basename(name).lower()
    return "timeline" in base or "engine_profile" in base


def is_number(cell):
    try:
        float(cell)
        return True
    except (TypeError, ValueError):
        return False


def within(base, cur, tolerance):
    """Relative comparison with an absolute floor for near-zero values."""
    base = float(base)
    cur = float(cur)
    if base == cur:
        return True
    denom = max(abs(base), 1e-9)
    if abs(base) < 1.0:
        # Tiny quantities (utilizations near 0, empty counters) get an
        # absolute window instead of an explosive relative one.
        return abs(cur - base) <= max(tolerance, tolerance * denom)
    return abs(cur - base) / denom <= tolerance


def compare_docs(name, base, cur, tolerance):
    """Yield human-readable difference strings."""
    if base.get("bench") != cur.get("bench"):
        yield (f"{name}: bench name changed "
               f"{base.get('bench')!r} -> {cur.get('bench')!r}")

    base_scalars = base.get("scalars", {})
    cur_scalars = cur.get("scalars", {})
    for key in sorted(base_scalars):
        if key not in cur_scalars:
            yield f"{name}: scalar {key!r} disappeared"
            continue
        if not within(base_scalars[key], cur_scalars[key], tolerance):
            yield (f"{name}: scalar {key!r} drifted "
                   f"{base_scalars[key]:g} -> {cur_scalars[key]:g} "
                   f"(tolerance {tolerance:.0%})")
    for key in sorted(set(cur_scalars) - set(base_scalars)):
        yield f"{name}: new scalar {key!r} missing from baseline"

    base_tables = {t["title"]: t for t in base.get("tables", [])}
    cur_tables = {t["title"]: t for t in cur.get("tables", [])}
    for title in sorted(base_tables):
        if title not in cur_tables:
            yield f"{name}: table {title!r} disappeared"
            continue
        bt, ct = base_tables[title], cur_tables[title]
        if len(bt["rows"]) != len(ct["rows"]):
            yield (f"{name}: table {title!r} row count "
                   f"{len(bt['rows'])} -> {len(ct['rows'])}")
            continue
        cols = bt.get("columns", [])
        for r, (brow, crow) in enumerate(zip(bt["rows"], ct["rows"])):
            if len(brow) != len(crow):
                yield (f"{name}: table {title!r} row {r} cell count "
                       f"{len(brow)} -> {len(crow)}")
                continue
            for c, (bcell, ccell) in enumerate(zip(brow, crow)):
                col = cols[c] if c < len(cols) else f"col{c}"
                if is_number(bcell) and is_number(ccell):
                    if not within(bcell, ccell, tolerance):
                        yield (f"{name}: {title!r} row {r} "
                               f"[{col}] drifted {bcell} -> {ccell} "
                               f"(tolerance {tolerance:.0%})")
                elif bcell != ccell:
                    yield (f"{name}: {title!r} row {r} [{col}] "
                           f"changed {bcell!r} -> {ccell!r}")
    for title in sorted(set(cur_tables) - set(base_tables)):
        yield f"{name}: new table {title!r} missing from baseline"


def wall_note(base, cur):
    """Informational wall-clock note; never influences pass/fail."""
    cur_wall = cur.get("wall_ms")
    if not is_number(cur_wall):
        return ""
    base_wall = base.get("wall_ms")
    if is_number(base_wall) and float(base_wall) > 0:
        ratio = float(cur_wall) / float(base_wall)
        return (f"  [wall {float(cur_wall):.0f} ms, "
                f"{ratio:.2f}x baseline]")
    return f"  [wall {float(cur_wall):.0f} ms]"


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", nargs="?",
                    help="baseline JSON file (file mode)")
    ap.add_argument("current", nargs="?",
                    help="current JSON file (file mode)")
    ap.add_argument("--baseline-dir",
                    help="directory of baseline *.json files")
    ap.add_argument("--current-dir",
                    help="directory of freshly generated *.json files")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="max relative drift (default 0.10 = 10%%)")
    args = ap.parse_args()

    pairs = []
    if args.baseline_dir or args.current_dir:
        if not (args.baseline_dir and args.current_dir):
            ap.error("--baseline-dir and --current-dir go together")
        listed = sorted(n for n in os.listdir(args.baseline_dir)
                        if n.endswith(".json"))
        names = [n for n in listed if not is_timeline_name(n)]
        for n in listed:
            if is_timeline_name(n):
                print(f"SKIP {n}: timeline document (never gated)")
        if not names:
            ap.error(f"no *.json baselines in {args.baseline_dir}")
        for n in names:
            cur = os.path.join(args.current_dir, n)
            if not os.path.exists(cur):
                print(f"FAIL {n}: no current result at {cur}")
                return 1
            pairs.append((n, os.path.join(args.baseline_dir, n), cur))
    elif args.baseline and args.current:
        pairs.append((os.path.basename(args.baseline), args.baseline,
                      args.current))
    else:
        ap.error("give BASELINE CURRENT files or both --*-dir options")

    failures = 0
    for name, base_path, cur_path in pairs:
        base_doc, cur_doc = load(base_path), load(cur_path)
        diffs = list(compare_docs(name, base_doc, cur_doc,
                                  args.tolerance))
        wall = wall_note(base_doc, cur_doc)
        if diffs:
            failures += 1
            for d in diffs:
                print(f"FAIL {d}")
        else:
            print(f"OK   {name}{wall}")
    if failures:
        print(f"\n{failures} of {len(pairs)} bench document(s) "
              f"regressed beyond {args.tolerance:.0%}")
        return 1
    print(f"\nall {len(pairs)} bench document(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
