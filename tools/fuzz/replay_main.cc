/**
 * @file
 * Replay a fuzzer repro: load the Experiment from a
 * `fuzz_repro.json` (or any JSON document with an "experiment"
 * member, or a bare experiment object), re-run the invariant oracle
 * — and, when the repro was a differential failure, the three-engine
 * differential check — and report.
 *
 *   fuzz_replay REPRO.json [--differential] [--print]
 *
 * Exit status 0 when the configuration is now clean, 1 when it still
 * violates, 2 on usage or parse errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json_value.hh"
#include "sim/check/differential.hh"
#include "sim/check/experiment_json.hh"
#include "sim/check/invariants.hh"

using namespace hsipc;
using namespace hsipc::sim;
using namespace hsipc::sim::check;

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    bool forceDifferential = false;
    bool print = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--differential") == 0)
            forceDifferential = true;
        else if (std::strcmp(argv[i], "--print") == 0)
            print = true;
        else if (!path)
            path = argv[i];
        else
            path = ""; // second positional: force the usage error
    }
    if (!path || !*path) {
        std::fprintf(stderr,
                     "usage: fuzz_replay REPRO.json [--differential] "
                     "[--print]\n");
        return 2;
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "fuzz_replay: cannot open %s\n", path);
        return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    Experiment exp;
    bool differential = forceDifferential;
    try {
        const JsonValue doc = parseJson(ss.str());
        const JsonValue &expDoc =
            doc.has("experiment") ? doc.at("experiment") : doc;
        exp = experimentFromJson(expDoc);
        if (doc.has("differential") &&
            doc.at("differential").asBool())
            differential = true;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "fuzz_replay: %s: %s\n", path, e.what());
        return 2;
    }

    if (print)
        std::fprintf(stdout, "%s", experimentToJson(exp).c_str());

    const CheckResult res = checkedRun(exp);
    std::vector<Violation> violations = res.violations;
    if (differential && differentialEligible(exp)) {
        const std::vector<Violation> dv = differentialCheck(exp);
        violations.insert(violations.end(), dv.begin(), dv.end());
    }

    if (violations.empty()) {
        std::fprintf(stderr, "fuzz_replay: %s is clean\n", path);
        return 0;
    }
    std::fprintf(stderr, "fuzz_replay: %s still violates:\n%s", path,
                 formatViolations(violations).c_str());
    return 1;
}
