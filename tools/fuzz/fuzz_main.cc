/**
 * @file
 * Property-based fuzzer: random runnable Experiments through the
 * invariant oracle (and, for the eligible subset, the three-engine
 * differential check), with automatic shrinking and a replayable JSON
 * repro on failure.
 *
 *   fuzz [--runs N] [--seed S] [--start I] [--out PATH]
 *        [--differential K] [--parallel-every M] [--no-shrink]
 *        [--inject-bug retransmission] [--quiet]
 *
 * Exit status 0 when every run is clean, 1 on the first violation
 * (after writing the minimized repro), 2 on usage errors.
 *
 * --inject-bug plants a deliberate off-by-one in the reliability
 * stack's retransmission counting (a test-only hook; see
 * sim/check/test_hooks.hh) so the whole pipeline — detection,
 * shrinking, repro emission — can itself be tested end to end.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "sim/check/differential.hh"
#include "sim/check/experiment_json.hh"
#include "sim/check/generator.hh"
#include "sim/check/invariants.hh"
#include "sim/check/shrink.hh"
#include "sim/check/test_hooks.hh"

using namespace hsipc;
using namespace hsipc::sim;
using namespace hsipc::sim::check;

namespace
{

struct Options
{
    long runs = 500;
    std::uint64_t seed = 1987;
    std::uint64_t start = 0;
    std::string out = "fuzz_repro.json";
    int differentialRuns = 8;
    int parallelEvery = 8;
    bool shrink = true;
    bool quiet = false;
    bool injectRetransmissionBug = false;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: fuzz [--runs N] [--seed S] [--start I] [--out PATH]\n"
        "            [--differential K] [--parallel-every M]\n"
        "            [--no-shrink] [--inject-bug retransmission]\n"
        "            [--quiet]\n");
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "fuzz: %s needs a value\n",
                             arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--runs") {
            const char *v = value();
            if (!v)
                return false;
            opt.runs = std::atol(v);
        } else if (arg == "--seed") {
            const char *v = value();
            if (!v)
                return false;
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--start") {
            const char *v = value();
            if (!v)
                return false;
            opt.start = std::strtoull(v, nullptr, 10);
        } else if (arg == "--out") {
            const char *v = value();
            if (!v)
                return false;
            opt.out = v;
        } else if (arg == "--differential") {
            const char *v = value();
            if (!v)
                return false;
            opt.differentialRuns = std::atoi(v);
        } else if (arg == "--parallel-every") {
            const char *v = value();
            if (!v)
                return false;
            opt.parallelEvery = std::atoi(v);
        } else if (arg == "--no-shrink") {
            opt.shrink = false;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--inject-bug") {
            const char *v = value();
            if (!v)
                return false;
            if (std::strcmp(v, "retransmission") != 0) {
                std::fprintf(stderr, "fuzz: unknown bug '%s'\n", v);
                return false;
            }
            opt.injectRetransmissionBug = true;
        } else {
            std::fprintf(stderr, "fuzz: unknown option '%s'\n",
                         arg.c_str());
            return false;
        }
    }
    return opt.runs >= 0;
}

/** The ids of the invariants a violation list touched. */
std::set<std::string>
violationIds(const std::vector<Violation> &v)
{
    std::set<std::string> ids;
    for (const Violation &viol : v)
        ids.insert(viol.invariant);
    return ids;
}

std::string
reproJson(const Experiment &minimal,
          const std::vector<Violation> &violations,
          const Options &opt, std::uint64_t index, int runsUsed,
          bool differential)
{
    std::string doc = "{\n";
    doc += "  \"schema\": \"hsipc-fuzz-repro-v1\",\n";
    doc += "  \"generatorSeed\": " +
           jsonString(std::to_string(opt.seed)) + ",\n";
    doc += "  \"generatorIndex\": " + std::to_string(index) + ",\n";
    doc += "  \"differential\": " +
           std::string(differential ? "true" : "false") + ",\n";
    doc += "  \"injectedBug\": " +
           std::string(opt.injectRetransmissionBug
                           ? "\"retransmission\""
                           : "null") +
           ",\n";
    doc += "  \"shrinkRuns\": " + std::to_string(runsUsed) + ",\n";
    doc += "  \"knobsChanged\": [";
    bool first = true;
    for (const std::string &k : knobDiff(minimal)) {
        doc += std::string(first ? "" : ", ") + jsonString(k);
        first = false;
    }
    doc += "],\n  \"violations\": [";
    first = true;
    for (const Violation &v : violations) {
        doc += std::string(first ? "" : ", ") +
               jsonString(v.invariant + ": " + v.detail);
        first = false;
    }
    doc += "],\n  \"experiment\": " + experimentToJson(minimal);
    // experimentToJson ends with "}\n"; close the outer object.
    doc += "}\n";
    return doc;
}

/** Shrink, write the repro, report, and return the process status. */
int
failWith(const Experiment &exp, std::vector<Violation> violations,
         const Options &opt, std::uint64_t index, bool differential)
{
    std::fprintf(stderr,
                 "fuzz: violation at index %llu (seed %llu):\n%s",
                 static_cast<unsigned long long>(index),
                 static_cast<unsigned long long>(opt.seed),
                 formatViolations(violations).c_str());

    Experiment minimal = exp;
    int runsUsed = 0;
    if (opt.shrink) {
        // Keep the shrink anchored to the original failure: a
        // candidate counts only if it violates one of the same
        // invariants.
        const std::set<std::string> ids = violationIds(violations);
        // Only pay for the determinism re-runs during shrinking when
        // the original failure was a determinism violation.
        OracleOptions shrinkOracle;
        shrinkOracle.checkTraceIdentity =
            ids.count("determinism.traceIdentity") > 0;
        shrinkOracle.parallelJobs =
            ids.count("determinism.parallelIdentity") > 0 ? 3 : 0;
        auto sameFailure = [&](const Experiment &cand) {
            const std::vector<Violation> v =
                differential
                    ? (differentialEligible(cand)
                           ? differentialCheck(cand)
                           : std::vector<Violation>())
                    : checkedRun(cand, shrinkOracle).violations;
            for (const Violation &viol : v)
                if (ids.count(viol.invariant))
                    return true;
            return false;
        };
        const ShrinkResult shrunk =
            shrinkExperiment(exp, sameFailure);
        minimal = shrunk.minimal;
        runsUsed = shrunk.runsUsed;
        violations = differential
                         ? differentialCheck(minimal)
                         : checkedRun(minimal, shrinkOracle)
                               .violations;
        std::fprintf(stderr,
                     "fuzz: shrunk to %d knob(s) off base in %d "
                     "runs: ",
                     knobDelta(minimal), runsUsed);
        for (const std::string &k : knobDiff(minimal))
            std::fprintf(stderr, "%s ", k.c_str());
        std::fprintf(stderr, "\n");
    }

    std::ofstream repro(opt.out, std::ios::binary);
    repro << reproJson(minimal, violations, opt, index, runsUsed,
                       differential);
    repro.close();
    std::fprintf(stderr, "fuzz: repro written to %s\n",
                 opt.out.c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return 2;
    }
    if (opt.injectRetransmissionBug)
        testHooks().retransmissionMiscount = 1;

    // Crash-window configs legitimately warn about long-unacked
    // packets; collect instead of spamming stderr.
    long warnings = 0;
    warnHook() = [&warnings](const std::string &) { ++warnings; };

    ExperimentGenerator gen(opt.seed);
    long differentialDone = 0;
    for (long i = 0; i < opt.runs; ++i) {
        const std::uint64_t index = opt.start +
                                    static_cast<std::uint64_t>(i);
        const Experiment exp = gen.generate(index);

        OracleOptions oracle;
        oracle.checkTraceIdentity = true;
        oracle.parallelJobs =
            (opt.parallelEvery > 0 && i % opt.parallelEvery == 0)
                ? 3
                : 0;
        const CheckResult res = checkedRun(exp, oracle);
        if (!res.ok())
            return failWith(exp, res.violations, opt, index, false);

        if (differentialDone < opt.differentialRuns &&
            differentialEligible(exp)) {
            ++differentialDone;
            const std::vector<Violation> dv = differentialCheck(exp);
            if (!dv.empty())
                return failWith(exp, dv, opt, index, true);
        }

        if (!opt.quiet && (i + 1) % 100 == 0)
            std::fprintf(stderr,
                         "fuzz: %ld/%ld clean (%ld differential, "
                         "%ld warnings)\n",
                         i + 1, opt.runs, differentialDone,
                         warnings);
    }
    if (!opt.quiet)
        std::fprintf(stderr,
                     "fuzz: %ld runs clean, %ld differential "
                     "cross-checks, %ld warnings collected\n",
                     opt.runs, differentialDone, warnings);
    return 0;
}
