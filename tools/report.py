#!/usr/bin/env python3
"""Render a simulation timeline document as a dashboard.

The simulator, run with `Experiment.timeline{IntervalUs,File}`, writes
a JSON document of windowed series (see docs/observability.md):

    {"intervalUs": ..., "horizonUs": ..., "warmupUs": ...,
     "stats": {... MSER-5 steady-state analysis ...},
     "decomposition": {...},          # when decomposeLatency was on
     "counters": {name: [per-bin deltas]},
     "gauges":   {name: [per-bin samples]}}

This tool renders that document two ways:

  *terminal* (default): one unicode sparkline per series with
  min/mean/max and, for counters, the integral (which equals the
  whole-run Outcome counter exactly), plus the steady-state verdict —
  the transient/knee/recovery shapes that whole-run aggregates hide.

  *HTML* (`--html out.html`): a self-contained dashboard (inline SVG,
  no external assets) with one chart per series, the warmup boundary
  and detected truncation point marked, grouped by series prefix.

Usage:
    report.py TIMELINE.json [TIMELINE2.json ...] [--html out.html]
              [--only PREFIX] [--width N]

Exit status: 0 on success, 1 on a malformed document.
"""

import argparse
import html
import json
import sys

SPARK_CHARS = " .:-=+*#%@"
BLOCK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values, chars=BLOCK_CHARS):
    """Map a series onto a fixed character ramp (empty-safe)."""
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi <= lo:
        return chars[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(chars) - 1))
        out.append(chars[idx])
    return "".join(out)


def resample(values, width):
    """Average adjacent bins down to at most `width` points."""
    if width <= 0 or len(values) <= width:
        return list(values)
    out = []
    n = len(values)
    for i in range(width):
        a = i * n // width
        b = max(a + 1, (i + 1) * n // width)
        chunk = values[a:b]
        out.append(sum(chunk) / len(chunk))
    return out


def fmt(v):
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.4g}"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    for key in ("intervalUs", "horizonUs", "counters", "gauges"):
        if key not in doc:
            raise ValueError(f"{path}: missing '{key}' — not a "
                             "timeline document")
    return doc


def series_items(doc, only):
    for kind in ("counters", "gauges"):
        for name in sorted(doc[kind]):
            if only and not name.startswith(only):
                continue
            yield kind, name, doc[kind][name]


# --- terminal rendering ---------------------------------------------


def render_stats_text(doc, out):
    stats = doc.get("stats")
    if not stats or not stats.get("enabled"):
        return
    if stats.get("insufficientData"):
        verdict = "run too short for a steady-state verdict"
    elif stats.get("transientPolluted"):
        verdict = ("TRANSIENT POLLUTED: warmup %s us < detected "
                   "truncation %s us" %
                   (fmt(doc["warmupUs"]), fmt(stats["truncationUs"])))
    else:
        verdict = ("steady after %s us (warmup %s us covers it)" %
                   (fmt(stats["truncationUs"]), fmt(doc["warmupUs"])))
    out.write("  steady state: %s\n" % verdict)
    if stats.get("batches"):
        out.write(
            "  batch means: throughput %s /s (+/- %s), "
            "round trip %s us (+/- %s), %d batches\n" %
            (fmt(stats["throughputPerSec"]),
             fmt(stats["throughputCi95PerSec"]),
             fmt(stats["meanRtUs"]), fmt(stats["rtCi95Us"]),
             int(stats["batches"])))


def render_decomposition_text(doc, out):
    d = doc.get("decomposition")
    if not d:
        return
    out.write("  decomposition: %s messages, mean round trip %s us, "
              "bottleneck %s\n" %
              (fmt(d.get("messages", 0)),
               fmt(d.get("meanRoundTripUs", 0)),
               d.get("bottleneck", "?")))


def render_text(paths, docs, only, width, out=sys.stdout):
    for path, doc in zip(paths, docs):
        bins = 0
        for _, _, values in series_items(doc, None):
            bins = max(bins, len(values))
        out.write("%s: %s bins x %s us (warmup %s us)\n" %
                  (path, bins, fmt(doc["intervalUs"]),
                   fmt(doc["warmupUs"])))
        render_stats_text(doc, out)
        render_decomposition_text(doc, out)
        name_w = max((len(n) for _, n, _ in series_items(doc, only)),
                     default=0)
        for kind, name, values in series_items(doc, only):
            line = sparkline(resample(values, width))
            if kind == "counters":
                tail = "integral %s" % fmt(sum(values))
            else:
                tail = "last %s" % fmt(values[-1] if values else 0)
            out.write("  %-*s |%s| min %s max %s %s\n" %
                      (name_w, name, line, fmt(min(values, default=0)),
                       fmt(max(values, default=0)), tail))
        out.write("\n")


# --- HTML rendering --------------------------------------------------

HTML_HEAD = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>timeline report</title>
<style>
 body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
        max-width: 72em; color: #1a1a1a; }
 h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
 .verdict { padding: .5em .8em; border-radius: 4px;
            background: #eef6ee; display: inline-block; }
 .verdict.bad { background: #fbecec; }
 .chart { margin: .6em 0; }
 .chart .name { font-family: ui-monospace, monospace;
                font-size: 12px; color: #444; }
 .meta { color: #666; font-size: 12px; }
 svg { background: #fafafa; border: 1px solid #e0e0e0; }
 svg polyline { fill: none; stroke: #2a6fb0; stroke-width: 1.2; }
 svg .warmup { stroke: #bbb; stroke-dasharray: 3 2; }
 svg .trunc { stroke: #c06030; stroke-dasharray: 5 3; }
</style></head><body>
"""


def svg_chart(values, interval_us, warmup_us, trunc_us, w=640, h=80):
    """One series as an inline SVG polyline with marker rules."""
    pts = resample(values, w)
    lo = min(pts, default=0.0)
    hi = max(pts, default=0.0)
    lo = min(lo, 0.0)
    span = (hi - lo) or 1.0
    step = w / max(1, len(pts))
    coords = []
    for i, v in enumerate(pts):
        x = i * step + step / 2
        y = h - 4 - (v - lo) / span * (h - 8)
        coords.append("%.1f,%.1f" % (x, y))
    horizon_us = interval_us * max(1, len(values))
    rules = []
    for cls, at_us in (("warmup", warmup_us), ("trunc", trunc_us)):
        if at_us and 0 < at_us < horizon_us:
            x = at_us / horizon_us * w
            rules.append('<line class="%s" x1="%.1f" y1="0" '
                         'x2="%.1f" y2="%d"/>' % (cls, x, x, h))
    return ('<svg width="%d" height="%d">%s<polyline points="%s"/>'
            '</svg>' % (w, h, "".join(rules), " ".join(coords)))


def render_html(paths, docs, only, path_out):
    parts = [HTML_HEAD, "<h1>Timeline report</h1>"]
    for path, doc in zip(paths, docs):
        parts.append("<h2>%s</h2>" % html.escape(path))
        parts.append('<p class="meta">interval %s us, horizon %s us, '
                     'warmup %s us</p>' %
                     (fmt(doc["intervalUs"]), fmt(doc["horizonUs"]),
                      fmt(doc["warmupUs"])))
        stats = doc.get("stats") or {}
        trunc = stats.get("truncationUs", 0)
        if stats.get("enabled"):
            if stats.get("insufficientData"):
                parts.append('<p class="verdict">run too short for a '
                             'steady-state verdict</p>')
            elif stats.get("transientPolluted"):
                parts.append('<p class="verdict bad">transient '
                             'polluted: warmup %s us &lt; truncation '
                             '%s us</p>' %
                             (fmt(doc["warmupUs"]), fmt(trunc)))
            else:
                parts.append('<p class="verdict">steady after %s us; '
                             'throughput %s /s &plusmn; %s</p>' %
                             (fmt(trunc),
                              fmt(stats.get("throughputPerSec", 0)),
                              fmt(stats.get("throughputCi95PerSec",
                                            0))))
        d = doc.get("decomposition")
        if d:
            parts.append('<p class="meta">decomposition: %s messages, '
                         'mean round trip %s us, bottleneck %s</p>' %
                         (fmt(d.get("messages", 0)),
                          fmt(d.get("meanRoundTripUs", 0)),
                          html.escape(str(d.get("bottleneck", "?")))))
        for kind, name, values in series_items(doc, only):
            tail = ("integral %s" % fmt(sum(values))
                    if kind == "counters" else
                    "last %s" % fmt(values[-1] if values else 0))
            parts.append('<div class="chart"><div class="name">%s '
                         '<span class="meta">(%s, min %s, max %s, '
                         '%s)</span></div>%s</div>' %
                         (html.escape(name), kind[:-1],
                          fmt(min(values, default=0)),
                          fmt(max(values, default=0)), tail,
                          svg_chart(values, doc["intervalUs"],
                                    doc["warmupUs"], trunc)))
    parts.append("</body></html>\n")
    with open(path_out, "w") as f:
        f.write("\n".join(parts))


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Render timeline JSON as a dashboard")
    ap.add_argument("timelines", nargs="+",
                    help="timeline JSON files from the simulator")
    ap.add_argument("--html", metavar="OUT",
                    help="write a self-contained HTML dashboard")
    ap.add_argument("--only", metavar="PREFIX",
                    help="render only series with this name prefix")
    ap.add_argument("--width", type=int, default=72,
                    help="terminal sparkline width (default 72)")
    args = ap.parse_args(argv)

    try:
        docs = [load(p) for p in args.timelines]
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print("report: %s" % e, file=sys.stderr)
        return 1

    if args.html:
        render_html(args.timelines, docs, args.only, args.html)
        print("report: wrote %s" % args.html)
    else:
        render_text(args.timelines, docs, args.only, args.width)
    return 0


if __name__ == "__main__":
    sys.exit(main())
