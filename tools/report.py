#!/usr/bin/env python3
"""Render a simulation timeline document as a dashboard.

The simulator, run with `Experiment.timeline{IntervalUs,File}`, writes
a JSON document of windowed series (see docs/observability.md):

    {"intervalUs": ..., "horizonUs": ..., "warmupUs": ...,
     "stats": {... MSER-5 steady-state analysis ...},
     "decomposition": {...},          # when decomposeLatency was on
     "counters": {name: [per-bin deltas]},
     "gauges":   {name: [per-bin samples]}}

This tool renders that document two ways:

  *terminal* (default): one unicode sparkline per series with
  min/mean/max and, for counters, the integral (which equals the
  whole-run Outcome counter exactly), plus the steady-state verdict —
  the transient/knee/recovery shapes that whole-run aggregates hide.

  *HTML* (`--html out.html`): a self-contained dashboard (inline SVG,
  no external assets) with one chart per series, the warmup boundary
  and detected truncation point marked, grouped by series prefix.

With `--profile`, the inputs are instead engine-profile documents
(`Experiment.engineProfile{,File}` or a bench's `--profile` flag): the
tool prints the event-queue telemetry, the per-track wall-clock cost
table, and the scheduling-provenance (lookahead/LP) graph with each
edge's measured minimum positive delta — edges whose deltas are all
zero are flagged, since they would force null lookahead on a
conservative parallel partition.

Usage:
    report.py TIMELINE.json [TIMELINE2.json ...] [--html out.html]
              [--only PREFIX] [--width N]
    report.py --profile PROFILE.json [PROFILE2.json ...]

Exit status: 0 on success, 1 on a malformed document.
"""

import argparse
import html
import json
import sys

SPARK_CHARS = " .:-=+*#%@"
BLOCK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values, chars=BLOCK_CHARS):
    """Map a series onto a fixed character ramp (empty-safe)."""
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi <= lo:
        return chars[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(chars) - 1))
        out.append(chars[idx])
    return "".join(out)


def resample(values, width):
    """Average adjacent bins down to at most `width` points."""
    if width <= 0 or len(values) <= width:
        return list(values)
    out = []
    n = len(values)
    for i in range(width):
        a = i * n // width
        b = max(a + 1, (i + 1) * n // width)
        chunk = values[a:b]
        out.append(sum(chunk) / len(chunk))
    return out


def fmt(v):
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.4g}"


def _require(doc, path, keys, kind):
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: top level is not an object — not "
                         f"a {kind} document")
    for key in keys:
        if key not in doc:
            raise ValueError(f"{path}: missing '{key}' — not a "
                             f"{kind} document")


def _number_list(values, path, name):
    if not isinstance(values, list) or any(
            not isinstance(v, (int, float)) or isinstance(v, bool)
            for v in values):
        raise ValueError(f"{path}: series '{name}' is not a list of "
                         "numbers — truncated or corrupt document")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict) and doc.get("engineProfile") == 1:
        raise ValueError(f"{path}: this is an engine-profile "
                         "document — render it with --profile")
    _require(doc, path,
             ("intervalUs", "horizonUs", "counters", "gauges"),
             "timeline")
    for kind in ("counters", "gauges"):
        if not isinstance(doc[kind], dict):
            raise ValueError(f"{path}: '{kind}' is not an object — "
                             "truncated or corrupt document")
        for name, values in doc[kind].items():
            _number_list(values, path, f"{kind}.{name}")
    return doc


def load_profile(path):
    with open(path) as f:
        doc = json.load(f)
    _require(doc, path, ("engineProfile", "queue", "tracks", "edges"),
             "engine-profile")
    if doc["engineProfile"] != 1:
        raise ValueError(f"{path}: unsupported engine-profile schema "
                         f"version {doc['engineProfile']!r}")
    if not isinstance(doc["queue"], dict):
        raise ValueError(f"{path}: 'queue' is not an object — "
                         "truncated or corrupt document")
    for key in ("pushes", "pops", "comparisons", "maxHeapSize",
                "remainingAtEnd"):
        if not isinstance(doc["queue"].get(key), (int, float)):
            raise ValueError(f"{path}: queue.{key} missing or not a "
                             "number — truncated or corrupt document")
    for section, keys in (("tracks", ("name", "events", "sampled")),
                          ("edges", ("src", "dst", "count",
                                     "zeroDelta",
                                     "minPositiveDeltaUs"))):
        if not isinstance(doc[section], list):
            raise ValueError(f"{path}: '{section}' is not an array — "
                             "truncated or corrupt document")
        for item in doc[section]:
            if not isinstance(item, dict) or any(k not in item
                                                 for k in keys):
                raise ValueError(
                    f"{path}: malformed {section} entry {item!r}")
    return doc


def series_items(doc, only):
    for kind in ("counters", "gauges"):
        for name in sorted(doc[kind]):
            if only and not name.startswith(only):
                continue
            yield kind, name, doc[kind][name]


# --- terminal rendering ---------------------------------------------


def render_stats_text(doc, out):
    stats = doc.get("stats")
    if not stats or not stats.get("enabled"):
        return
    if stats.get("insufficientData"):
        verdict = "run too short for a steady-state verdict"
    elif stats.get("transientPolluted"):
        verdict = ("TRANSIENT POLLUTED: warmup %s us < detected "
                   "truncation %s us" %
                   (fmt(doc["warmupUs"]), fmt(stats["truncationUs"])))
    else:
        verdict = ("steady after %s us (warmup %s us covers it)" %
                   (fmt(stats["truncationUs"]), fmt(doc["warmupUs"])))
    out.write("  steady state: %s\n" % verdict)
    if stats.get("batches"):
        out.write(
            "  batch means: throughput %s /s (+/- %s), "
            "round trip %s us (+/- %s), %d batches\n" %
            (fmt(stats["throughputPerSec"]),
             fmt(stats["throughputCi95PerSec"]),
             fmt(stats["meanRtUs"]), fmt(stats["rtCi95Us"]),
             int(stats["batches"])))


def render_decomposition_text(doc, out):
    d = doc.get("decomposition")
    if not d:
        return
    out.write("  decomposition: %s messages, mean round trip %s us, "
              "bottleneck %s\n" %
              (fmt(d.get("messages", 0)),
               fmt(d.get("meanRoundTripUs", 0)),
               d.get("bottleneck", "?")))


def render_text(paths, docs, only, width, out=sys.stdout):
    for path, doc in zip(paths, docs):
        bins = 0
        for _, _, values in series_items(doc, None):
            bins = max(bins, len(values))
        out.write("%s: %s bins x %s us (warmup %s us)\n" %
                  (path, bins, fmt(doc["intervalUs"]),
                   fmt(doc["warmupUs"])))
        render_stats_text(doc, out)
        render_decomposition_text(doc, out)
        name_w = max((len(n) for _, n, _ in series_items(doc, only)),
                     default=0)
        for kind, name, values in series_items(doc, only):
            line = sparkline(resample(values, width))
            if kind == "counters":
                tail = "integral %s" % fmt(sum(values))
            else:
                tail = "last %s" % fmt(values[-1] if values else 0)
            out.write("  %-*s |%s| min %s max %s %s\n" %
                      (name_w, name, line, fmt(min(values, default=0)),
                       fmt(max(values, default=0)), tail))
        out.write("\n")


# --- engine-profile rendering ----------------------------------------


def _sketch_line(s):
    if not isinstance(s, dict) or not s.get("count"):
        return "no samples"
    return ("n %s  min %s  p50 %s  p95 %s  p99 %s  max %s" %
            tuple(fmt(s.get(k, 0)) for k in
                  ("count", "min", "p50", "p95", "p99", "max")))


def render_profile_text(paths, docs, out=None):
    out = out if out is not None else sys.stdout
    for path, doc in zip(paths, docs):
        q = doc["queue"]
        out.write("%s: engine profile (1-in-%s wall sampling, %s "
                  "sampled events)\n" %
                  (path, fmt(doc.get("sampleEvery", 1)),
                   fmt(doc.get("sampledEvents", 0))))
        per_pop = (q["comparisons"] / q["pops"]) if q["pops"] else 0.0
        out.write("  queue (%s): %s pushes, %s pops, %s remaining, "
                  "max depth %s, %.2f comparisons/pop\n" %
                  (q.get("kind", "heap"), fmt(q["pushes"]),
                   fmt(q["pops"]), fmt(q["remainingAtEnd"]),
                   fmt(q["maxHeapSize"]), per_pop))
        if q.get("batchCommits"):
            commits = q["batchCommits"]
            batched = q.get("batchedEvents", 0)
            out.write("  batches: %s commits, %s events "
                      "(%.1f events/commit)\n" %
                      (fmt(commits), fmt(batched),
                       batched / commits))
        lad = doc.get("ladder")
        if isinstance(lad, dict):
            # Tolerate counters this renderer doesn't know about: a
            # newer engine may add telemetry without breaking older
            # report.py checkouts, so named fields render first and
            # any unrecognized ones append as name=value.
            known = ("topTransfers", "rungSpawns", "bottomSorts",
                     "sortedEvents", "maxBucket")
            line = ("  ladder: %s top transfers, %s rung spawns, "
                    "%s bottom sorts (%s events), max bucket %s" %
                    tuple(fmt(lad.get(k, 0)) for k in known))
            extra = ["%s=%s" % (k, fmt(v))
                     for k, v in sorted(lad.items())
                     if k not in known
                     and isinstance(v, (int, float))]
            if extra:
                line += ", " + ", ".join(extra)
            out.write(line + "\n")
        cb = doc.get("callbacks", {})
        if isinstance(cb, dict) and cb:
            out.write("  callbacks: %s pooled spills, %s oversize"
                      "%s\n" %
                      (fmt(cb.get("spillConstructs", 0)),
                       fmt(cb.get("oversizeConstructs", 0)),
                       ", %s fresh pool blocks" %
                       fmt(cb["freshPoolBlocks"])
                       if "freshPoolBlocks" in cb else ""))
        out.write("  dwell (us):  %s\n" %
                  _sketch_line(doc.get("dwellUs")))
        out.write("  heap depth:  %s\n" %
                  _sketch_line(doc.get("heapDepth")))

        out.write("  tracks (events by origin):\n")
        name_w = max((len(str(t["name"])) for t in doc["tracks"]),
                     default=4)
        for t in sorted(doc["tracks"], key=lambda t: -t["events"]):
            wall = t.get("wallNs")
            out.write("    %-*s %10s events  %8s sampled%s\n" %
                      (name_w, t["name"], fmt(t["events"]),
                       fmt(t["sampled"]),
                       "  wall(ns) " + _sketch_line(wall)
                       if isinstance(wall, dict) and wall.get("count")
                       else ""))

        out.write("  lookahead graph (src -> dst, min positive "
                  "delta):\n")
        edges = sorted(doc["edges"],
                       key=lambda e: (e["minPositiveDeltaUs"] == 0,
                                      e["minPositiveDeltaUs"],
                                      e["src"], e["dst"]))
        zero_edges = 0
        for e in edges:
            if e["minPositiveDeltaUs"] > 0:
                bound = "lookahead %s us" % fmt(e["minPositiveDeltaUs"])
                if e.get("meanDeltaUs"):
                    bound += " (mean %s)" % fmt(e["meanDeltaUs"])
                if e["zeroDelta"]:
                    bound += ", %s zero-delta!" % fmt(e["zeroDelta"])
                    zero_edges += 1
            else:
                bound = "NO LOOKAHEAD (all deltas zero)"
                zero_edges += 1
            out.write("    %s -> %s: %s schedules, %s\n" %
                      (e["src"], e["dst"], fmt(e["count"]), bound))
        if not edges:
            out.write("    (none recorded)\n")
        if zero_edges:
            out.write("  warning: %d edge(s) carry zero-delta "
                      "schedules; a conservative parallel partition "
                      "cut on them would stall\n" % zero_edges)
        out.write("\n")


# --- HTML rendering --------------------------------------------------

HTML_HEAD = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>timeline report</title>
<style>
 body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
        max-width: 72em; color: #1a1a1a; }
 h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
 .verdict { padding: .5em .8em; border-radius: 4px;
            background: #eef6ee; display: inline-block; }
 .verdict.bad { background: #fbecec; }
 .chart { margin: .6em 0; }
 .chart .name { font-family: ui-monospace, monospace;
                font-size: 12px; color: #444; }
 .meta { color: #666; font-size: 12px; }
 svg { background: #fafafa; border: 1px solid #e0e0e0; }
 svg polyline { fill: none; stroke: #2a6fb0; stroke-width: 1.2; }
 svg .warmup { stroke: #bbb; stroke-dasharray: 3 2; }
 svg .trunc { stroke: #c06030; stroke-dasharray: 5 3; }
</style></head><body>
"""


def svg_chart(values, interval_us, warmup_us, trunc_us, w=640, h=80):
    """One series as an inline SVG polyline with marker rules."""
    pts = resample(values, w)
    lo = min(pts, default=0.0)
    hi = max(pts, default=0.0)
    lo = min(lo, 0.0)
    span = (hi - lo) or 1.0
    step = w / max(1, len(pts))
    coords = []
    for i, v in enumerate(pts):
        x = i * step + step / 2
        y = h - 4 - (v - lo) / span * (h - 8)
        coords.append("%.1f,%.1f" % (x, y))
    horizon_us = interval_us * max(1, len(values))
    rules = []
    for cls, at_us in (("warmup", warmup_us), ("trunc", trunc_us)):
        if at_us and 0 < at_us < horizon_us:
            x = at_us / horizon_us * w
            rules.append('<line class="%s" x1="%.1f" y1="0" '
                         'x2="%.1f" y2="%d"/>' % (cls, x, x, h))
    return ('<svg width="%d" height="%d">%s<polyline points="%s"/>'
            '</svg>' % (w, h, "".join(rules), " ".join(coords)))


def render_html(paths, docs, only, path_out):
    parts = [HTML_HEAD, "<h1>Timeline report</h1>"]
    for path, doc in zip(paths, docs):
        parts.append("<h2>%s</h2>" % html.escape(path))
        parts.append('<p class="meta">interval %s us, horizon %s us, '
                     'warmup %s us</p>' %
                     (fmt(doc["intervalUs"]), fmt(doc["horizonUs"]),
                      fmt(doc["warmupUs"])))
        stats = doc.get("stats") or {}
        trunc = stats.get("truncationUs", 0)
        if stats.get("enabled"):
            if stats.get("insufficientData"):
                parts.append('<p class="verdict">run too short for a '
                             'steady-state verdict</p>')
            elif stats.get("transientPolluted"):
                parts.append('<p class="verdict bad">transient '
                             'polluted: warmup %s us &lt; truncation '
                             '%s us</p>' %
                             (fmt(doc["warmupUs"]), fmt(trunc)))
            else:
                parts.append('<p class="verdict">steady after %s us; '
                             'throughput %s /s &plusmn; %s</p>' %
                             (fmt(trunc),
                              fmt(stats.get("throughputPerSec", 0)),
                              fmt(stats.get("throughputCi95PerSec",
                                            0))))
        d = doc.get("decomposition")
        if d:
            parts.append('<p class="meta">decomposition: %s messages, '
                         'mean round trip %s us, bottleneck %s</p>' %
                         (fmt(d.get("messages", 0)),
                          fmt(d.get("meanRoundTripUs", 0)),
                          html.escape(str(d.get("bottleneck", "?")))))
        for kind, name, values in series_items(doc, only):
            tail = ("integral %s" % fmt(sum(values))
                    if kind == "counters" else
                    "last %s" % fmt(values[-1] if values else 0))
            parts.append('<div class="chart"><div class="name">%s '
                         '<span class="meta">(%s, min %s, max %s, '
                         '%s)</span></div>%s</div>' %
                         (html.escape(name), kind[:-1],
                          fmt(min(values, default=0)),
                          fmt(max(values, default=0)), tail,
                          svg_chart(values, doc["intervalUs"],
                                    doc["warmupUs"], trunc)))
    parts.append("</body></html>\n")
    with open(path_out, "w") as f:
        f.write("\n".join(parts))


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Render timeline JSON as a dashboard")
    ap.add_argument("timelines", nargs="+",
                    help="timeline JSON files from the simulator")
    ap.add_argument("--profile", action="store_true",
                    help="inputs are engine-profile documents")
    ap.add_argument("--html", metavar="OUT",
                    help="write a self-contained HTML dashboard")
    ap.add_argument("--only", metavar="PREFIX",
                    help="render only series with this name prefix")
    ap.add_argument("--width", type=int, default=72,
                    help="terminal sparkline width (default 72)")
    args = ap.parse_args(argv)

    try:
        if args.profile:
            if args.html:
                raise ValueError(
                    "--html does not apply to --profile documents")
            docs = [load_profile(p) for p in args.timelines]
        else:
            docs = [load(p) for p in args.timelines]
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print("report: %s" % e, file=sys.stderr)
        return 1

    if args.profile:
        render_profile_text(args.timelines, docs)
    elif args.html:
        render_html(args.timelines, docs, args.only, args.html)
        print("report: wrote %s" % args.html)
    else:
        render_text(args.timelines, docs, args.only, args.width)
    return 0


if __name__ == "__main__":
    sys.exit(main())
