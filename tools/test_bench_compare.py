#!/usr/bin/env python3
"""Unit tests for bench_compare.py (registered as ctest
`bench_compare_unit`).

Covers the tolerance arithmetic at its edges (relative band for
values >= 1, the absolute window for near-zero quantities), the
missing/new key diagnostics, the rule that `wall_ms` is informational
and never gates the comparison, and the CLI exit statuses.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_compare  # noqa: E402


def diffs(base, cur, tolerance=0.10):
    return list(bench_compare.compare_docs("t", base, cur, tolerance))


class WithinTest(unittest.TestCase):
    def test_exact_equality_passes_at_zero_tolerance(self):
        self.assertTrue(bench_compare.within(123.456, 123.456, 0.0))
        self.assertTrue(bench_compare.within(0.0, 0.0, 0.0))

    def test_relative_band_is_inclusive_at_the_edge(self):
        # 10% of 100 is exactly 10: on the edge passes, a hair over
        # fails.
        self.assertTrue(bench_compare.within(100.0, 110.0, 0.10))
        self.assertTrue(bench_compare.within(100.0, 90.0, 0.10))
        self.assertFalse(bench_compare.within(100.0, 110.001, 0.10))
        self.assertFalse(bench_compare.within(100.0, 89.999, 0.10))

    def test_near_zero_uses_an_absolute_window(self):
        # A 0.02 -> 0.05 utilization change is a 150% relative move
        # but within the 0.10 absolute window for sub-unit values.
        self.assertTrue(bench_compare.within(0.02, 0.05, 0.10))
        self.assertTrue(bench_compare.within(0.0, 0.10, 0.10))
        self.assertFalse(bench_compare.within(0.0, 0.11, 0.10))
        self.assertFalse(bench_compare.within(0.5, 0.601, 0.10))

    def test_accepts_numeric_strings_like_table_cells(self):
        self.assertTrue(bench_compare.within("100", "105", 0.10))
        self.assertFalse(bench_compare.within("100", "120", 0.10))

    def test_is_number(self):
        self.assertTrue(bench_compare.is_number("3.5"))
        self.assertTrue(bench_compare.is_number(7))
        self.assertFalse(bench_compare.is_number("Arch II"))
        self.assertFalse(bench_compare.is_number(None))


class CompareDocsTest(unittest.TestCase):
    def doc(self, **overrides):
        d = {
            "bench": "b",
            "scalars": {"throughput": 1000.0, "util": 0.5},
            "tables": [{
                "title": "T",
                "columns": ["arch", "rt_us"],
                "rows": [["II", 2670.0], ["III", 2200.0]],
            }],
        }
        d.update(overrides)
        return d

    def test_identical_docs_produce_no_diffs(self):
        self.assertEqual(diffs(self.doc(), self.doc()), [])

    def test_scalar_drift_beyond_tolerance_is_reported(self):
        cur = self.doc()
        cur["scalars"]["throughput"] = 1201.0
        out = diffs(self.doc(), cur)
        self.assertEqual(len(out), 1)
        self.assertIn("throughput", out[0])
        self.assertIn("drifted", out[0])

    def test_missing_scalar_key_is_reported_not_crashed(self):
        cur = self.doc()
        del cur["scalars"]["util"]
        out = diffs(self.doc(), cur)
        self.assertEqual(len(out), 1)
        self.assertIn("disappeared", out[0])

    def test_new_scalar_key_is_also_flagged(self):
        cur = self.doc()
        cur["scalars"]["extra"] = 1.0
        out = diffs(self.doc(), cur)
        self.assertEqual(len(out), 1)
        self.assertIn("missing from baseline", out[0])

    def test_docs_without_scalars_or_tables_compare_clean(self):
        # Documents missing whole sections are legal, not a KeyError.
        self.assertEqual(diffs({"bench": "b"}, {"bench": "b"}), [])

    def test_missing_table_and_row_count_changes(self):
        cur = self.doc(tables=[])
        self.assertIn("disappeared", diffs(self.doc(), cur)[0])
        cur = self.doc()
        cur["tables"][0]["rows"] = cur["tables"][0]["rows"][:1]
        self.assertIn("row count", diffs(self.doc(), cur)[0])

    def test_table_cell_drift_names_row_and_column(self):
        cur = self.doc()
        cur["tables"][0]["rows"][1][1] = 2700.0
        out = diffs(self.doc(), cur)
        self.assertEqual(len(out), 1)
        self.assertIn("row 1", out[0])
        self.assertIn("rt_us", out[0])

    def test_non_numeric_cells_compare_exactly(self):
        cur = self.doc()
        cur["tables"][0]["rows"][0][0] = "IV"
        out = diffs(self.doc(), cur)
        self.assertEqual(len(out), 1)
        self.assertIn("changed", out[0])

    def test_bench_name_change_is_reported(self):
        self.assertIn("bench name changed",
                      diffs(self.doc(), self.doc(bench="other"))[0])


class WallClockTest(unittest.TestCase):
    def test_wall_ms_never_gates_the_comparison(self):
        base = {"bench": "b", "scalars": {"x": 1.0}, "wall_ms": 100.0}
        cur = {"bench": "b", "scalars": {"x": 1.0}, "wall_ms": 9000.0}
        # A 90x wall-clock blowup produces zero differences...
        self.assertEqual(diffs(base, cur, tolerance=0.0), [])
        # ...but is surfaced in the informational note.
        note = bench_compare.wall_note(base, cur)
        self.assertIn("9000 ms", note)
        self.assertIn("90.00x", note)

    def test_wall_note_degrades_gracefully(self):
        self.assertEqual(
            bench_compare.wall_note({}, {"bench": "b"}), "")
        self.assertEqual(
            bench_compare.wall_note({}, {"wall_ms": "fast"}), "")
        # Current wall without a baseline: absolute time only.
        note = bench_compare.wall_note({}, {"wall_ms": 250.0})
        self.assertIn("250 ms", note)
        self.assertNotIn("x baseline", note)


class MainTest(unittest.TestCase):
    def run_main(self, argv):
        old = sys.argv
        sys.argv = ["bench_compare.py"] + argv
        try:
            return bench_compare.main()
        finally:
            sys.argv = old

    def write(self, directory, name, doc):
        path = os.path.join(directory, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def test_file_mode_exit_codes(self):
        base = {"bench": "b", "scalars": {"x": 100.0}}
        with tempfile.TemporaryDirectory() as d:
            b = self.write(d, "base.json", base)
            ok = self.write(d, "ok.json",
                            {"bench": "b", "scalars": {"x": 105.0}})
            bad = self.write(d, "bad.json",
                             {"bench": "b", "scalars": {"x": 150.0}})
            self.assertEqual(self.run_main([b, ok]), 0)
            self.assertEqual(self.run_main([b, bad]), 1)
            # A looser tolerance turns the same pair green.
            self.assertEqual(
                self.run_main([b, bad, "--tolerance", "0.6"]), 0)

    def test_directory_mode_requires_every_counterpart(self):
        doc = {"bench": "b", "scalars": {"x": 1.0}}
        with tempfile.TemporaryDirectory() as bd, \
                tempfile.TemporaryDirectory() as cd:
            self.write(bd, "a.json", doc)
            self.write(cd, "a.json", doc)
            self.assertEqual(self.run_main(
                ["--baseline-dir", bd, "--current-dir", cd]), 0)
            self.write(bd, "b.json", doc)  # no counterpart in cd
            self.assertEqual(self.run_main(
                ["--baseline-dir", bd, "--current-dir", cd]), 1)

    def test_directory_mode_never_gates_timeline_documents(self):
        doc = {"bench": "b", "scalars": {"x": 1.0}}
        timeline = {"intervalUs": 5000.0, "horizonUs": 20000.0,
                    "warmupUs": 0.0,
                    "counters": {"ipc.allTrips": [1, 2, 3, 4]},
                    "gauges": {}}
        with tempfile.TemporaryDirectory() as bd, \
                tempfile.TemporaryDirectory() as cd:
            self.write(bd, "a.json", doc)
            self.write(cd, "a.json", doc)
            # A baseline timeline with no current counterpart — and a
            # current timeline that drifted arbitrarily — both pass.
            self.write(bd, "a_timeline.json", timeline)
            self.assertEqual(self.run_main(
                ["--baseline-dir", bd, "--current-dir", cd]), 0)
            drifted = dict(timeline,
                           counters={"ipc.allTrips": [99, 0, 0, 0]})
            self.write(cd, "a_timeline.json", drifted)
            self.assertEqual(self.run_main(
                ["--baseline-dir", bd, "--current-dir", cd,
                 "--tolerance", "0.0"]), 0)

    def test_is_timeline_name(self):
        self.assertTrue(bench_compare.is_timeline_name(
            "bench/baselines/beyond_overload_timeline.json"))
        self.assertFalse(bench_compare.is_timeline_name(
            "beyond_overload.json"))


if __name__ == "__main__":
    unittest.main()
