/**
 * @file
 * Ablation: how much of the communication processing must move to the
 * front-end before the coprocessor pays off?  This is the question
 * the §1.2 front-end modeling studies asked; the thesis' answer is
 * "all of it, at the level of the operating-system primitives".
 *
 * Throughput versus offloaded fraction for front-ends at half, equal
 * and double the host's speed, on the architecture-II local workload.
 */

#include <cstdio>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "core/models/local_model.hh"
#include "core/models/solution.hh"

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "ablation_offload");
    using namespace hsipc;
    using namespace hsipc::models;

    const int n = 4;
    const double x = 1710.0;
    const double arch1 =
        solveLocal(Arch::I, n, x).throughputPerUs * 1e6;

    TextTable t("Front-end offload fraction (4 conversations, "
                "X = 1.71 ms, local): messages/sec");
    t.header({"Fraction offloaded", "0.5x front-end", "1x front-end",
              "2x front-end"});
    for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        std::vector<std::string> row{TextTable::num(f, 2)};
        for (double beta : {0.5, 1.0, 2.0}) {
            const double thr =
                solveLocalCustom(offloadParams(f, beta), n, x, 1)
                    .throughputPerUs * 1e6;
            row.push_back(TextTable::num(thr, 1));
        }
        t.row(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    hsipc::bench::record(t);
    std::printf("  architecture I reference: %.1f msgs/s; fraction "
                "1.0 at 1x equals architecture II\n",
                arch1);
    return hsipc::bench::finish();
}
