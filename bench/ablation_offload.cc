/**
 * @file
 * Ablation: how much of the communication processing must move to the
 * front-end before the coprocessor pays off?  This is the question
 * the §1.2 front-end modeling studies asked; the thesis' answer is
 * "all of it, at the level of the operating-system primitives".
 *
 * Throughput versus offloaded fraction for front-ends at half, equal
 * and double the host's speed, on the architecture-II local workload.
 *
 * The 16 model solves are independent and fan out over `--jobs`
 * workers; the table renders afterwards in input order.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common/bench_main.hh"
#include "common/parallel/parallel.hh"
#include "common/table.hh"
#include "core/models/local_model.hh"
#include "core/models/solution.hh"

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "ablation_offload");
    using namespace hsipc;
    using namespace hsipc::models;

    const int n = 4;
    const double x = 1710.0;
    const std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75, 1.0};
    const std::vector<double> betas = {0.5, 1.0, 2.0};

    // Task 0 is the architecture-I reference; the rest are the
    // (fraction, beta) grid in rendering order.
    std::vector<std::function<double()>> tasks;
    tasks.push_back([n, x]() {
        return solveLocal(Arch::I, n, x).throughputPerUs * 1e6;
    });
    for (double f : fractions) {
        for (double beta : betas) {
            tasks.push_back([f, beta, n, x]() {
                return solveLocalCustom(offloadParams(f, beta), n, x, 1)
                           .throughputPerUs * 1e6;
            });
        }
    }
    const std::vector<double> thr =
        parallel::runAll<double>(bench::jobs(), tasks);

    TextTable t("Front-end offload fraction (4 conversations, "
                "X = 1.71 ms, local): messages/sec");
    t.header({"Fraction offloaded", "0.5x front-end", "1x front-end",
              "2x front-end"});
    std::size_t cell = 1;
    for (double f : fractions) {
        std::vector<std::string> row{TextTable::num(f, 2)};
        for (double beta : betas) {
            (void)beta;
            row.push_back(TextTable::num(thr[cell++], 1));
        }
        t.row(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    hsipc::bench::record(t);
    std::printf("  architecture I reference: %.1f msgs/s; fraction "
                "1.0 at 1x equals architecture II\n",
                thr[0]);
    return hsipc::bench::finish();
}
