/**
 * @file
 * Beyond the thesis: the four architectures on an unreliable medium.
 *
 * The thesis assumes the medium delivers every packet (§6.2) and only
 * costs the low-level protocol processing of the happy path.  This
 * bench drops that assumption: a FaultPlan injects loss, and a
 * sliding-window ack/timeout/retransmit protocol — executed as kernel
 * activities on whichever processor the architecture assigns to
 * communication — keeps the conversations running.  The question the
 * published figures could never ask: who pays for retransmission
 * processing, and which architecture degrades most gracefully?
 *
 * All 24 simulations (ideal yardsticks, loss sweep, 2%-loss
 * accounting, crash recovery) are one sweep through the runner
 * (`--jobs N`); outcomes land by input index and the tables render
 * afterwards, byte-identical at any jobs level.
 */

#include <cstdio>
#include <vector>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "sim/runner/bench_profile.hh"
#include "sim/runner/sweep_runner.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::models;

sim::Experiment
base(Arch a)
{
    sim::Experiment e;
    e.arch = a;
    e.local = false;
    e.conversations = 4;
    e.computeUs = 2850; // realistic server computation (cf. fig 6.18)
    e.measureUs = 4000000; // long window: loss effects are small
    return e;
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "beyond_lossy_network");
    using sim::Outcome;

    constexpr Arch archs[] = {Arch::I, Arch::II, Arch::III};
    const std::vector<double> losses = {0.0, 0.01, 0.02, 0.05, 0.10};

    // One flat experiment list in rendering order: the ideal-medium
    // yardsticks, the loss sweep, the 2%-loss accounting and the
    // crash-recovery runs.
    std::vector<sim::Experiment> exps;
    for (Arch a : archs)
        exps.push_back(base(a));
    for (double loss : losses) {
        for (Arch a : archs) {
            sim::Experiment e = base(a);
            e.reliableProtocol = true;
            e.lossRate = loss;
            exps.push_back(e);
        }
    }
    for (Arch a : archs) {
        sim::Experiment e = base(a);
        e.reliableProtocol = true;
        e.lossRate = 0.02;
        exps.push_back(e);
    }
    for (Arch a : archs) {
        sim::Experiment e = base(a);
        e.reliableProtocol = true;
        e.crashSchedule.push_back({1, e.warmupUs + 300000,
                                   e.warmupUs + 500000});
        exps.push_back(e);
    }
    sim::applyBenchProfile(exps);
    const std::vector<Outcome> outcomes =
        sim::runSweep(exps, bench::jobs());
    sim::writeBenchProfile(outcomes);
    std::size_t cell = 0;

    // Ideal-medium throughput, no reliability stack: the yardstick.
    double ideal[3];
    for (int i = 0; i < 3; ++i)
        ideal[i] = outcomes[cell++].throughputPerSec;

    TextTable sweep("Loss sweep (non-local, 4 conversations, X = 2.85 "
                    "ms): messages/sec and % of ideal-medium rate");
    sweep.header({"Loss", "Arch I", "ret%", "Arch II", "ret%",
                  "Arch III", "ret%"});
    for (double loss : losses) {
        std::vector<std::string> row{TextTable::num(loss * 100, 1)};
        for (int i = 0; i < 3; ++i) {
            const Outcome &o = outcomes[cell++];
            row.push_back(TextTable::num(o.throughputPerSec, 1));
            row.push_back(
                TextTable::num(100 * o.throughputPerSec / ideal[i], 1));
        }
        sweep.row(std::move(row));
    }
    std::printf("%s", sweep.render().c_str());
    hsipc::bench::record(sweep);
    std::printf("  Under Architecture I the bottleneck host also runs "
                "the reliability stack\n  and gives up a quarter of "
                "its rate before a single packet is lost; II moves\n"
                "  the stack to the MP and III hides even the MP's "
                "bus traffic.  The more an\n  architecture offloads, "
                "the more it retains at every loss rate, and only "
                "the\n  offloaded architectures have slack left to "
                "lose as the medium worsens.\n\n");

    TextTable pays("Who pays at 2% loss: protocol processing per "
                   "round trip");
    pays.header({"Arch", "host us/RT", "MP us/RT", "retx/s",
                 "goodput", "wire pkts/s"});
    for (int i = 0; i < 3; ++i) {
        const Outcome &o = outcomes[cell];
        pays.row({archName(archs[i]),
                  TextTable::num(o.protoHostUsPerRt, 1),
                  TextTable::num(o.protoMpUsPerRt, 1),
                  TextTable::num(o.retransmissions /
                                     (exps[cell].measureUs / 1e6),
                                 1),
                  TextTable::num(o.netGoodputPktsPerSec, 1),
                  TextTable::num(o.netThroughputPktsPerSec, 1)});
        ++cell;
    }
    std::printf("%s", pays.render().c_str());
    hsipc::bench::record(pays);
    std::printf("  The protocol bill is the same; only the payer "
                "changes.  Retransmissions\n  put wire packets/s "
                "above goodput: the difference is waste the faults "
                "cause.\n\n");

    TextTable crash("Crash recovery: server node down 300-500 ms into "
                    "the measured window");
    crash.header({"Arch", "msgs/sec", "recovered", "recovery (ms)"});
    for (int i = 0; i < 3; ++i) {
        const Outcome &o = outcomes[cell++];
        crash.row({archName(archs[i]),
                   TextTable::num(o.throughputPerSec, 1),
                   std::to_string(o.crashWindowsRecovered),
                   TextTable::num(o.meanRecoveryUs / 1000.0, 1)});
    }
    std::printf("%s", crash.render().c_str());
    hsipc::bench::record(crash);
    std::printf("  A fail-stop outage drops every packet at the node "
                "boundary; the window\n  protocol replays from kernel "
                "state once the node returns.  Recovery waits\n  for "
                "the next backed-off retry after the outage ends, so "
                "the faster\n  architectures — more packets in "
                "flight, denser retry schedules — are\n  first back "
                "on the air.\n");
    return hsipc::bench::finish();
}
