/**
 * @file
 * Three-way methodology comparison: the exact GTPN analysis the thesis
 * used, classic Mean Value Analysis of the equivalent closed queueing
 * network, and the event-driven kernel simulator — all on the local
 * architecture-II workload.
 *
 * MVA cannot express the rendezvous coupling between a client's send
 * and the matching server's receive, nor the interrupt preemption; the
 * gap between its prediction and the GTPN/simulation is the value the
 * Petri-net formalism buys (§6.5's rationale for choosing GTPNs).
 */

#include <cstdio>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "core/models/mva.hh"
#include "core/models/solution.hh"
#include "sim/kernel/ipc_sim.hh"

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "methodology_comparison");
    using namespace hsipc;
    using namespace hsipc::models;

    TextTable t("GTPN vs MVA vs simulation (Arch II local): "
                "messages/sec");
    t.header({"Conversations", "X (ms)", "GTPN", "MVA", "Simulated",
              "MVA/GTPN"});
    for (int n : {1, 2, 3, 4}) {
        for (double x : {0.0, 1710.0, 5700.0}) {
            const double gtpn =
                solveLocal(Arch::II, n, x).throughputPerUs * 1e6;
            const double mva =
                mvaLocalThroughput(Arch::II, n, x) * 1e6;

            sim::Experiment e;
            e.arch = Arch::II;
            e.local = true;
            e.conversations = n;
            e.computeUs = x;
            const double simt = sim::runExperiment(e).throughputPerSec;

            t.row({std::to_string(n), TextTable::num(x / 1000.0, 2),
                   TextTable::num(gtpn, 1), TextTable::num(mva, 1),
                   TextTable::num(simt, 1),
                   TextTable::num(mva / gtpn, 3)});
        }
    }
    std::printf("%s", t.render().c_str());
    hsipc::bench::record(t);
    std::printf("  MVA sees independent host/MP stations; it misses "
                "the send/receive rendezvous\n  barrier and so "
                "over-predicts at several conversations.\n");
    return hsipc::bench::finish();
}
