/**
 * @file
 * Regenerates Tables 6.24 and 6.25 — the offered load C/(C+S) of each
 * architecture for the thesis' sweep of server-computation times.
 * C is obtained, as in the thesis, by solving each model with one
 * conversation and zero computation.
 *
 * The per-cell loads fan out over `--jobs` workers; the tables are
 * rendered afterwards in input order, byte-identical at any jobs
 * level.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common/bench_main.hh"
#include "common/parallel/parallel.hh"
#include "common/table.hh"
#include "core/models/offered_load.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::models;

// Paper values (columns I, II, III, IV) for spot comparison at
// selected rows: 0.57 ms, 5.7 ms and 45.6 ms.
struct PaperSpot
{
    double ms;
    double load[4];
};

constexpr Arch archs[] = {Arch::I, Arch::II, Arch::III, Arch::IV};

void
table(bool local, const char *title, const std::vector<PaperSpot> &spots,
      const std::vector<double> &loads, std::size_t &cell)
{
    TextTable t(title);
    t.header({"Server Time (ms)", "Arch I", "Arch II", "Arch III",
              "Arch IV", "paper I/II/III/IV"});
    for (double ms : offeredLoadServerTimesMs()) {
        std::vector<std::string> row{TextTable::num(ms, 2)};
        for (Arch a : archs) {
            (void)a;
            row.push_back(TextTable::num(loads[cell++], 3));
        }
        std::string paper = "-";
        for (const PaperSpot &s : spots) {
            if (s.ms == ms) {
                paper = TextTable::num(s.load[0], 3) + "/" +
                        TextTable::num(s.load[1], 3) + "/" +
                        TextTable::num(s.load[2], 3) + "/" +
                        TextTable::num(s.load[3], 3);
            }
        }
        row.push_back(paper);
        t.row(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    hsipc::bench::record(t);
    std::printf("  C (1 conversation, X=0): I %.0f, II %.0f, III %.0f, "
                "IV %.0f us\n\n",
                communicationTime(Arch::I, local),
                communicationTime(Arch::II, local),
                communicationTime(Arch::III, local),
                communicationTime(Arch::IV, local));
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "table6_24_25_offered_load");

    std::vector<std::function<double()>> tasks;
    for (bool local : {true, false}) {
        for (double ms : offeredLoadServerTimesMs()) {
            for (Arch a : archs) {
                tasks.push_back([a, local, ms]() {
                    return offeredLoad(a, local, ms * 1000.0);
                });
            }
        }
    }
    const std::vector<double> loads =
        parallel::runAll<double>(hsipc::bench::jobs(), tasks);

    std::size_t cell = 0;
    table(true, "Table 6.24 - Offered Loads (Local)",
          {{0.57, {0.897, 0.905, 0.867, 0.866}},
           {5.7, {0.466, 0.488, 0.399, 0.393}},
           {45.6, {0.098, 0.107, 0.077, 0.075}}},
          loads, cell);
    table(false, "Table 6.25 - Offered Loads (Non-local)",
          {{0.57, {0.920, 0.924, 0.900, 0.898}},
           {5.7, {0.536, 0.549, 0.474, 0.469}},
           {45.6, {0.126, 0.132, 0.101, 0.099}}},
          loads, cell);
    return hsipc::bench::finish();
}
