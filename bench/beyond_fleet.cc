/**
 * @file
 * Beyond the thesis: scaling one pair of 925 nodes out to a fleet.
 *
 * The thesis models one or two nodes and argues the architectures'
 * ranking carries over to "a network of such machines" (§6.6.4)
 * without ever simulating one.  The topology layer closes that gap:
 * this bench grows an N-node fleet at a fixed per-node load (one
 * conversation per node, round-robin neighbour placement) over the
 * two interconnect fabrics — a full point-to-point mesh and a single
 * store-and-forward switch — and reports how round-trip time and
 * goodput scale with N.  The switch's peak queue depth shows where
 * the shared fabric starts to congest while the mesh stays flat.
 *
 * The 10 simulations run through the sweep runner (`--jobs N`);
 * outcomes land by input index and the table renders afterwards,
 * byte-identical at any jobs level.
 */

#include <cstdio>
#include <vector>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "sim/runner/bench_profile.hh"
#include "sim/runner/sweep_runner.hh"

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "beyond_fleet");
    using namespace hsipc;
    using namespace hsipc::models;

    constexpr int nodes[] = {2, 4, 8, 16, 32};

    std::vector<sim::Experiment> exps;
    for (int n : nodes) {
        for (int kind = 0; kind <= 1; ++kind) {
            sim::Experiment e;
            e.arch = Arch::III;
            e.local = false;
            e.conversations = n; // one client per node, fixed load
            e.computeUs = 1710;
            e.topo.nodes = n;
            e.topo.kind = kind;
            e.topo.linkLatencyUs = 50;
            e.topo.switchLatencyUs = 20;
            e.topo.placement = 1; // round-robin neighbours
            exps.push_back(e);
        }
    }
    sim::applyBenchProfile(exps);
    const std::vector<sim::Outcome> outcomes =
        sim::runSweep(exps, bench::jobs());
    sim::writeBenchProfile(outcomes);

    TextTable t("Fleet scaling (Arch III, 1 conversation/node, "
                "X = 1.71 ms): mesh vs switch");
    t.header({"Nodes", "Mesh RT (ms)", "Mesh msg/s", "Switch RT (ms)",
              "Switch msg/s", "Switch peak q"});
    std::size_t cell = 0;
    for (int n : nodes) {
        const sim::Outcome &mesh = outcomes[cell++];
        const sim::Outcome &star = outcomes[cell++];
        long swPeak = 0;
        for (const sim::topo::RouterLedger &r : star.topo.routers)
            swPeak = r.queuePeak > swPeak ? r.queuePeak : swPeak;
        t.row({std::to_string(n),
               TextTable::num(mesh.meanRoundTripUs / 1000.0, 2),
               TextTable::num(mesh.throughputPerSec, 1),
               TextTable::num(star.meanRoundTripUs / 1000.0, 2),
               TextTable::num(star.throughputPerSec, 1),
               std::to_string(swPeak)});
    }
    std::printf("%s", t.render().c_str());
    hsipc::bench::record(t);
    std::printf("  Goodput is fleet-total messages/sec; per-node load "
                "is constant, so ideal scaling doubles each row.\n"
                "  The mesh scales almost linearly; the single switch "
                "serializes every cross-node message and its queue\n"
                "  depth grows with N — the congestion the thesis' "
                "two-node models could not exhibit.\n");
    return hsipc::bench::finish();
}
