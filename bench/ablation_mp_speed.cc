/**
 * @file
 * Ablation: sensitivity of the message-coprocessor architecture to
 * the relative speed of the MP — the question the front-end-processor
 * modeling studies of §1.2 asked (Woodside 84, Vernon 86).
 *
 * A half-speed MP should erase much of architecture II's advantage at
 * communication-heavy loads (the MP becomes the bottleneck); beyond
 * ~2x the returns diminish because the host-side work and the
 * serialized rendezvous dominate.
 */

#include <cstdio>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "core/models/local_model.hh"
#include "core/models/solution.hh"
#include "sim/kernel/ipc_sim.hh"

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "ablation_mp_speed");
    using namespace hsipc;
    using namespace hsipc::models;

    const int n = 4;
    const double factors[] = {0.5, 1.0, 2.0, 4.0};

    for (double x : {0.0, 1710.0}) {
        TextTable t(std::string("MP speed ablation (Arch II local, "
                                "4 conversations, X = ") +
                    TextTable::num(x / 1000.0, 2) + " ms)");
        t.header({"MP speed vs host", "Model msgs/s", "Sim msgs/s",
                  "vs Arch I"});
        const double arch1 =
            solveLocal(Arch::I, n, x).throughputPerUs * 1e6;
        for (double f : factors) {
            const double model =
                solveLocalCustom(scaleMpSpeed(localParams(Arch::II), f),
                                 n, x, 1)
                    .throughputPerUs * 1e6;

            sim::Experiment e;
            e.arch = Arch::II;
            e.local = true;
            e.conversations = n;
            e.computeUs = x;
            e.mpSpeedFactor = f;
            const double simt = sim::runExperiment(e).throughputPerSec;

            t.row({TextTable::num(f, 1) + "x",
                   TextTable::num(model, 1), TextTable::num(simt, 1),
                   TextTable::num(model / arch1, 2) + "x"});
        }
        std::printf("%s\n", t.render().c_str());
        hsipc::bench::record(t);
    }
    return hsipc::bench::finish();
}
