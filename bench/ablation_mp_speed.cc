/**
 * @file
 * Ablation: sensitivity of the message-coprocessor architecture to
 * the relative speed of the MP — the question the front-end-processor
 * modeling studies of §1.2 asked (Woodside 84, Vernon 86).
 *
 * A half-speed MP should erase much of architecture II's advantage at
 * communication-heavy loads (the MP becomes the bottleneck); beyond
 * ~2x the returns diminish because the host-side work and the
 * serialized rendezvous dominate.
 *
 * The model solves and the simulations are independent; both fan out
 * over `--jobs` workers (simulations via the sweep runner) and the
 * tables render afterwards in input order.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common/bench_main.hh"
#include "common/parallel/parallel.hh"
#include "common/table.hh"
#include "core/models/local_model.hh"
#include "core/models/solution.hh"
#include "sim/runner/bench_profile.hh"
#include "sim/runner/sweep_runner.hh"

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "ablation_mp_speed");
    using namespace hsipc;
    using namespace hsipc::models;

    const int n = 4;
    const double factors[] = {0.5, 1.0, 2.0, 4.0};
    const double computes[] = {0.0, 1710.0};

    // Model solves: per X, the Arch I reference plus one solve per MP
    // speed factor.
    std::vector<std::function<double()>> modelTasks;
    std::vector<sim::Experiment> exps;
    for (double x : computes) {
        modelTasks.push_back([x]() {
            return solveLocal(Arch::I, n, x).throughputPerUs * 1e6;
        });
        for (double f : factors) {
            modelTasks.push_back([x, f]() {
                return solveLocalCustom(
                           scaleMpSpeed(localParams(Arch::II), f), n, x,
                           1)
                           .throughputPerUs * 1e6;
            });
            sim::Experiment e;
            e.arch = Arch::II;
            e.local = true;
            e.conversations = n;
            e.computeUs = x;
            e.mpSpeedFactor = f;
            exps.push_back(e);
        }
    }
    const std::vector<double> model =
        parallel::runAll<double>(bench::jobs(), modelTasks);
    sim::applyBenchProfile(exps);
    const std::vector<sim::Outcome> outcomes =
        sim::runSweep(exps, bench::jobs());
    sim::writeBenchProfile(outcomes);

    std::size_t mcell = 0;
    std::size_t scell = 0;
    for (double x : computes) {
        TextTable t(std::string("MP speed ablation (Arch II local, "
                                "4 conversations, X = ") +
                    TextTable::num(x / 1000.0, 2) + " ms)");
        t.header({"MP speed vs host", "Model msgs/s", "Sim msgs/s",
                  "vs Arch I"});
        const double arch1 = model[mcell++];
        for (double f : factors) {
            const double m = model[mcell++];
            const double simt = outcomes[scell++].throughputPerSec;
            t.row({TextTable::num(f, 1) + "x", TextTable::num(m, 1),
                   TextTable::num(simt, 1),
                   TextTable::num(m / arch1, 2) + "x"});
        }
        std::printf("%s\n", t.render().c_str());
        hsipc::bench::record(t);
    }
    return hsipc::bench::finish();
}
