/**
 * @file
 * Regenerates Table 6.1 — queue-manipulation and block-transfer costs
 * under architecture II (software on a conventional bus) versus
 * architecture III (smart-bus primitives).
 *
 * The architecture-III memory-cycle column is *measured* on the
 * edge-accurate smart-bus simulator running the microcoded controller;
 * the processing column is the three instructions (3 us each at 0.3
 * MIPS) needed to initiate a smart-bus primitive (§6.4).
 */

#include <cstdio>

#include "bus/memory.hh"
#include "bus/smart_bus.hh"
#include "common/bench_main.hh"
#include "common/table.hh"
#include "core/models/processing_times.hh"
#include "ucode/microcode.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::bus;

double
measureUs(const char *op)
{
    SimMemory mem(4096);
    ucode::MicrocodedController ctrl(mem);
    SmartBus bus(mem);
    bus.setController(ctrl);
    const int mp = bus.addUnit("MP", 3);

    SmartBus::OpId id = -1;
    const std::string name(op);
    if (name == "Enqueue") {
        id = bus.postEnqueue(mp, 2, 32);
    } else if (name == "Dequeue") {
        QueueOps::enqueue(mem, 2, 32);
        id = bus.postDequeue(mp, 2, 32);
    } else if (name == "First") {
        QueueOps::enqueue(mem, 2, 32);
        id = bus.postFirst(mp, 2);
    } else if (name == "Block Read (40 Bytes)") {
        id = bus.postBlockRead(mp, 512, 40);
    } else if (name == "Block Write (40 Bytes)") {
        id = bus.postBlockWrite(mp, 512,
                                std::vector<std::uint8_t>(40, 1));
    }
    bus.run();
    return bus.result(id).durationUs();
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "table6_1_processing_times");
    using models::opCostTable;

    TextTable t("Table 6.1 - Comparison of Processing Times "
                "(microseconds)");
    t.header({"Operation", "II proc", "II mem", "III proc",
              "III mem (paper)", "III mem (measured)", "Handshake"});
    for (const auto &op : opCostTable()) {
        t.row({op.operation, TextTable::num(op.processingII, 0),
               TextTable::num(op.memoryII, 0),
               TextTable::num(op.processingIII, 0),
               TextTable::num(op.memoryIII, 0),
               TextTable::num(measureUs(op.operation), 0),
               op.handshake});
    }
    std::printf("%s", t.render().c_str());
    hsipc::bench::record(t);
    std::printf("  III processing = 3 instructions x 3 us (0.3 MIPS "
                "M68000) to initiate the primitive\n");
    return hsipc::bench::finish();
}
