/**
 * @file
 * Critical-path latency decomposition across the four architectures
 * under rising offered load — the observability layer answering the
 * thesis' core question ("which resource caps throughput, and what
 * does the client's latency consist of?") from the simulator's own
 * causal traces.
 *
 * For each architecture I-IV, a non-local client/server workload is
 * swept over 1..8 conversations and every round trip's latency is
 * decomposed into service, queueing, network, and blocked-on-
 * rendezvous time.  Below the throughput knee the round trip is
 * almost all service + network; past it, the added latency is pure
 * queueing on the saturated resource — visible here as the queueing
 * column exploding while service stays flat.  A second table
 * cross-checks the trace-derived bottleneck against the exact GTPN
 * model's saturating processor at maximum communication load.
 */

#include <cstdio>
#include <string>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "sim/analysis/bottleneck.hh"
#include "sim/kernel/ipc_sim.hh"
#include "sim/runner/bench_profile.hh"

namespace
{

using namespace hsipc;

const models::Arch kArchs[] = {models::Arch::I, models::Arch::II,
                               models::Arch::III, models::Arch::IV};

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "sim_latency_decomposition");

    // Engine profile across every run of the bench (with --profile).
    obs::EngineProfile engMerged;

    // --- Latency decomposition vs offered load ----------------------
    {
        TextTable t("Critical-path latency decomposition, non-local, "
                    "X = 2000 us (all columns us/round trip)");
        t.header({"Arch", "conv", "thr/s", "roundTrip", "service",
                  "queue", "network", "blocked", "queue p95",
                  "bottleneck"});
        for (models::Arch arch : kArchs) {
            for (int conv : {1, 2, 4, 8}) {
                sim::Experiment e;
                e.arch = arch;
                e.local = false;
                e.conversations = conv;
                e.computeUs = 2000;
                e.wireUs = 50;
                e.warmupUs = 20000;
                e.measureUs = 300000;
                e.decomposeLatency = true;
                e.engineProfile = hsipc::bench::profile();
                const sim::Outcome o = sim::runExperiment(e);
                engMerged.merge(o.engineProfile);
                const trace::Decomposition &d = o.decomposition;
                t.row({archName(arch), std::to_string(conv),
                       TextTable::num(o.throughputPerSec, 0),
                       TextTable::num(d.roundTrip.meanUs, 0),
                       TextTable::num(d.service.meanUs, 0),
                       TextTable::num(d.queue.meanUs, 0),
                       TextTable::num(d.network.meanUs, 0),
                       TextTable::num(d.blocked.meanUs, 0),
                       TextTable::num(d.queue.p95Us, 0),
                       d.bottleneck});
                // Headline scalars for the regression baseline: the
                // unloaded and saturated ends of each sweep.
                if (conv == 1 || conv == 8) {
                    const std::string k = std::string("arch") +
                                          archName(arch) + ".conv" +
                                          std::to_string(conv);
                    hsipc::bench::note(k + ".queueUs",
                                       d.queue.meanUs);
                    hsipc::bench::note(k + ".serviceUs",
                                       d.service.meanUs);
                    hsipc::bench::note(k + ".throughputPerSec",
                                       o.throughputPerSec);
                }
            }
        }
        std::printf("%s  service stays flat as load rises; the added "
                    "latency past the\n  knee is queueing on the "
                    "bottleneck resource.\n\n",
                    t.render().c_str());
        hsipc::bench::record(t);
    }

    // --- Bottleneck: trace vs exact GTPN analysis -------------------
    {
        TextTable t("Bottleneck at maximum communication load (local, "
                    "X = 0, 4 conversations): trace vs GTPN");
        t.header({"Arch", "trace bottleneck", "trace class",
                  "GTPN class", "GTPN host util", "GTPN mp util",
                  "agree"});
        int agreements = 0;
        for (models::Arch arch : kArchs) {
            sim::Experiment e;
            e.arch = arch;
            e.local = true;
            e.conversations = 4;
            e.computeUs = 0;
            e.warmupUs = 20000;
            e.measureUs = 200000;
            e.decomposeLatency = true;
            e.engineProfile = hsipc::bench::profile();
            const sim::Outcome o = sim::runExperiment(e);
            engMerged.merge(o.engineProfile);
            const auto traced =
                sim::analysis::traceBottleneck(o.decomposition);
            const auto model =
                sim::analysis::gtpnSaturation(arch, 4, 0);
            const bool agree = traced == model.bottleneck;
            agreements += agree;
            t.row({archName(arch), o.decomposition.bottleneck,
                   sim::analysis::resourceClassName(traced),
                   sim::analysis::resourceClassName(model.bottleneck),
                   TextTable::num(model.hostUtil, 3),
                   TextTable::num(model.mpUtil, 3),
                   agree ? "yes" : "NO"});
        }
        std::printf("%s  the measured critical path and the analytic "
                    "model blame the\n  same component on every "
                    "architecture.\n\n",
                    t.render().c_str());
        hsipc::bench::record(t);
        hsipc::bench::note("bottleneckAgreements",
                           static_cast<double>(agreements));
    }

    if (hsipc::bench::profile()) {
        engMerged.writeFile(hsipc::bench::profilePath());
        std::printf("engine profile: %s\n",
                    hsipc::bench::profilePath().c_str());
    }
    return hsipc::bench::finish();
}
