/**
 * @file
 * Regenerates Figures 6.18 and 6.19: message throughput versus
 * offered load under a realistic workload (non-zero server
 * computation), architectures I/II/III, 1-4 conversations.
 *
 * As in the thesis, the x axis is the offered load computed for
 * architecture I at the same server-computation time, so the three
 * architectures can be compared at equal work.
 *
 * Expected shape (§6.9.2): with several conversations architecture II
 * approaches a 2x gain over architecture I for offered loads in
 * 0.5-0.9; architecture III does better still and over a wider range;
 * at computation-intensive loads (left side) the curves converge.
 *
 * Each (X, n, arch) cell is an independent model solve; the sweep
 * fans out over `--jobs` workers and renders in input order, so the
 * output is byte-identical at any jobs level.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common/bench_main.hh"
#include "common/parallel/parallel.hh"
#include "common/table.hh"
#include "core/models/offered_load.hh"
#include "core/models/solution.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::models;

// Server-computation times (us) spanning offered loads ~1.0
// down to ~0.3 (Tables 6.24/6.25 rows 0-11.4 ms).
const std::vector<double> server_us = {0,    570,  1140, 1710,
                                       2850, 5700, 11400};
constexpr int convs[] = {1, 2, 4};
constexpr Arch archs[] = {Arch::I, Arch::II, Arch::III};

void
figure(bool local, const char *title, const std::vector<double> &thr,
       std::size_t &cell)
{
    TextTable t(title);
    t.header({"Server X (ms)", "Load(ArchI)", "Conv", "Arch I",
              "Arch II", "Arch III"});
    for (double x : server_us) {
        const double load = offeredLoad(Arch::I, local, x);
        for (int n : convs) {
            std::vector<std::string> row{
                TextTable::num(x / 1000.0, 2),
                TextTable::num(load, 3), std::to_string(n)};
            for (Arch a : archs) {
                (void)a;
                row.push_back(TextTable::num(thr[cell++] * 1e6, 1));
            }
            t.row(std::move(row));
        }
    }
    std::printf("%s\n", t.render().c_str());
    hsipc::bench::record(t);
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "fig6_18_19_realistic");

    std::vector<std::function<double()>> tasks;
    for (bool local : {true, false}) {
        for (double x : server_us) {
            for (int n : convs) {
                for (Arch a : archs) {
                    tasks.push_back([local, x, n, a]() {
                        return local
                            ? solveLocal(a, n, x).throughputPerUs
                            : solveNonlocal(a, n, x).throughputPerUs;
                    });
                }
            }
        }
    }
    const std::vector<double> thr =
        parallel::runAll<double>(hsipc::bench::jobs(), tasks);

    std::size_t cell = 0;
    figure(true,
           "Figure 6.18 - Realistic Workload (Local): messages/sec",
           thr, cell);
    figure(false,
           "Figure 6.19 - Realistic Workload (Non-local): "
           "messages/sec",
           thr, cell);
    return hsipc::bench::finish();
}
