/**
 * @file
 * Regenerates Figure 6.15 (a)-(c): validation of the GTPN model
 * against the "experimental implementation".
 *
 * The thesis validated its architecture-II non-local model against
 * measurements of the 925 implementation (two host processors per
 * node, an extra 40-byte copy through the memory-mapped network
 * buffers).  Here the event-driven kernel simulator plays the role of
 * the implementation: both the model and the simulator are configured
 * identically and compared over 1-4 conversations and a range of
 * offered loads.
 *
 * Paper agreement: within ~3-10% at one/two conversations; within 10%
 * at high offered loads and up to ~25% at low offered loads for 3-4
 * conversations — the model's processor-sharing assumption
 * load-levels across hosts while the implementation binds tasks to
 * hosts (§6.8); the simulator binds statically too, so the same
 * optimism should appear here.
 *
 * The 20 simulations are independent, so they run through the sweep
 * runner (`--jobs N`); outcomes land by input index and the table is
 * rendered afterwards, byte-identical at any jobs level.
 */

#include <cstdio>
#include <vector>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "core/models/solution.hh"
#include "sim/runner/bench_profile.hh"
#include "sim/runner/sweep_runner.hh"

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "fig6_15_validation");
    using namespace hsipc;
    using namespace hsipc::models;

    const std::vector<double> compute_us = {0, 1140, 2850, 5700,
                                            11400};

    std::vector<sim::Experiment> exps;
    for (int n = 1; n <= 4; ++n) {
        for (double x : compute_us) {
            sim::Experiment e;
            e.arch = Arch::II;
            e.local = false;
            e.conversations = n;
            e.computeUs = x;
            e.hostsPerNode = 2;
            e.extraCopy = true;
            e.measureUs = 3000000;
            exps.push_back(e);
        }
    }
    sim::applyBenchProfile(exps);
    const std::vector<sim::Outcome> outcomes =
        sim::runSweep(exps, bench::jobs());
    sim::writeBenchProfile(outcomes);

    TextTable t("Figure 6.15 - Model Validation (Arch II non-local, "
                "2 hosts/node, extra copy): messages/sec");
    t.header({"Conversations", "Server X (ms)", "Model", "Simulated",
              "model/sim"});
    std::size_t cell = 0;
    for (int n = 1; n <= 4; ++n) {
        for (double x : compute_us) {
            const NonlocalSolution m = solveNonlocalCustom(
                validationClientParams(), validationServerParams(), n,
                x, 2);
            const sim::Outcome &o = outcomes[cell++];

            const double model = m.throughputPerUs * 1e6;
            t.row({std::to_string(n), TextTable::num(x / 1000.0, 2),
                   TextTable::num(model, 1),
                   TextTable::num(o.throughputPerSec, 1),
                   TextTable::num(model / o.throughputPerSec, 3)});
        }
    }
    std::printf("%s", t.render().c_str());
    hsipc::bench::record(t);
    return hsipc::bench::finish();
}
