/**
 * @file
 * Google-benchmark microbenchmarks of the library itself: GTPN
 * reachability + steady-state solution, queue primitives (software
 * reference vs microcode), smart-bus transactions, and the
 * event-driven kernel simulator.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bus/memory.hh"
#include "bus/queue_ops.hh"
#include "bus/smart_bus.hh"
#include "core/models/local_model.hh"
#include "core/models/solution.hh"
#include "sim/kernel/ipc_sim.hh"
#include "ucode/microcode.hh"

namespace
{

using namespace hsipc;

void
BM_GtpnSolveLocal(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto s = models::solveLocal(models::Arch::II, n, 0.0);
        benchmark::DoNotOptimize(s.throughputPerUs);
    }
    state.counters["states"] = static_cast<double>(
        models::solveLocal(models::Arch::II, n, 0.0).states);
}
BENCHMARK(BM_GtpnSolveLocal)->Arg(1)->Arg(2)->Arg(3);

void
BM_GtpnNonlocalFixedPoint(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto s = models::solveNonlocal(models::Arch::III, n, 0.0);
        benchmark::DoNotOptimize(s.throughputPerUs);
    }
}
BENCHMARK(BM_GtpnNonlocalFixedPoint)->Arg(1)->Arg(2);

void
BM_QueueOpsSoftware(benchmark::State &state)
{
    bus::SimMemory mem(4096);
    for (auto _ : state) {
        bus::QueueOps::enqueue(mem, 2, 64);
        bus::QueueOps::enqueue(mem, 2, 96);
        benchmark::DoNotOptimize(bus::QueueOps::first(mem, 2));
        benchmark::DoNotOptimize(bus::QueueOps::first(mem, 2));
    }
}
BENCHMARK(BM_QueueOpsSoftware);

void
BM_QueueOpsMicrocoded(benchmark::State &state)
{
    bus::SimMemory mem(4096);
    ucode::MicroSequencer seq(mem);
    const auto &prog = ucode::microProgram();
    for (auto _ : state) {
        seq.run(prog.entryEnqueue, 2, 64);
        seq.run(prog.entryEnqueue, 2, 96);
        benchmark::DoNotOptimize(seq.run(prog.entryFirst, 2, 0).value);
        benchmark::DoNotOptimize(seq.run(prog.entryFirst, 2, 0).value);
    }
}
BENCHMARK(BM_QueueOpsMicrocoded);

void
BM_SmartBusBlockTransfer(benchmark::State &state)
{
    const auto bytes = static_cast<std::uint16_t>(state.range(0));
    for (auto _ : state) {
        bus::SimMemory mem(65536);
        bus::SmartBus b(mem);
        const int mp = b.addUnit("MP", 3);
        const auto op = b.postBlockRead(mp, 0, bytes);
        b.run();
        benchmark::DoNotOptimize(b.result(op).data.size());
    }
}
BENCHMARK(BM_SmartBusBlockTransfer)->Arg(40)->Arg(1024);

void
BM_KernelSimulation(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Experiment e;
        e.arch = models::Arch::II;
        e.local = true;
        e.conversations = 2;
        e.computeUs = 1140;
        e.warmupUs = 20000;
        e.measureUs = 200000;
        const auto o = sim::runExperiment(e);
        benchmark::DoNotOptimize(o.throughputPerSec);
    }
}
BENCHMARK(BM_KernelSimulation);

} // namespace

/**
 * Expanded BENCHMARK_MAIN() so this binary honors the same
 * `--json <path>` flag as every other bench: it maps onto google
 * benchmark's native JSON reporter flags before initialization.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv, argv + argc);
    for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--json" && i + 1 < args.size()) {
            const std::string path = args[i + 1];
            args.erase(args.begin() + static_cast<long>(i),
                       args.begin() + static_cast<long>(i) + 2);
            args.push_back("--benchmark_out=" + path);
            args.push_back("--benchmark_out_format=json");
            break;
        }
    }
    std::vector<char *> cargs;
    for (std::string &a : args)
        cargs.push_back(a.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
