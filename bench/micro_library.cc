/**
 * @file
 * Google-benchmark microbenchmarks of the library itself: GTPN
 * reachability + steady-state solution, queue primitives (software
 * reference vs microcode), smart-bus transactions, the event queue
 * (current explicit-heap/SBO implementation vs the seed
 * priority_queue/std::function pattern), and the event-driven kernel
 * simulator.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "bus/memory.hh"
#include "bus/queue_ops.hh"
#include "bus/smart_bus.hh"
#include "core/models/local_model.hh"
#include "core/models/solution.hh"
#include "sim/des/event_queue.hh"
#include "sim/des/ladder_queue.hh"
#include "sim/kernel/ipc_sim.hh"
#include "ucode/microcode.hh"

namespace
{

using namespace hsipc;

void
BM_GtpnSolveLocal(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto s = models::solveLocal(models::Arch::II, n, 0.0);
        benchmark::DoNotOptimize(s.throughputPerUs);
    }
    state.counters["states"] = static_cast<double>(
        models::solveLocal(models::Arch::II, n, 0.0).states);
}
BENCHMARK(BM_GtpnSolveLocal)->Arg(1)->Arg(2)->Arg(3);

void
BM_GtpnNonlocalFixedPoint(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto s = models::solveNonlocal(models::Arch::III, n, 0.0);
        benchmark::DoNotOptimize(s.throughputPerUs);
    }
}
BENCHMARK(BM_GtpnNonlocalFixedPoint)->Arg(1)->Arg(2);

void
BM_QueueOpsSoftware(benchmark::State &state)
{
    bus::SimMemory mem(4096);
    for (auto _ : state) {
        bus::QueueOps::enqueue(mem, 2, 64);
        bus::QueueOps::enqueue(mem, 2, 96);
        benchmark::DoNotOptimize(bus::QueueOps::first(mem, 2));
        benchmark::DoNotOptimize(bus::QueueOps::first(mem, 2));
    }
}
BENCHMARK(BM_QueueOpsSoftware);

void
BM_QueueOpsMicrocoded(benchmark::State &state)
{
    bus::SimMemory mem(4096);
    ucode::MicroSequencer seq(mem);
    const auto &prog = ucode::microProgram();
    for (auto _ : state) {
        seq.run(prog.entryEnqueue, 2, 64);
        seq.run(prog.entryEnqueue, 2, 96);
        benchmark::DoNotOptimize(seq.run(prog.entryFirst, 2, 0).value);
        benchmark::DoNotOptimize(seq.run(prog.entryFirst, 2, 0).value);
    }
}
BENCHMARK(BM_QueueOpsMicrocoded);

void
BM_SmartBusBlockTransfer(benchmark::State &state)
{
    const auto bytes = static_cast<std::uint16_t>(state.range(0));
    for (auto _ : state) {
        bus::SimMemory mem(65536);
        bus::SmartBus b(mem);
        const int mp = b.addUnit("MP", 3);
        const auto op = b.postBlockRead(mp, 0, bytes);
        b.run();
        benchmark::DoNotOptimize(b.result(op).data.size());
    }
}
BENCHMARK(BM_SmartBusBlockTransfer)->Arg(40)->Arg(1024);

/**
 * The event queue the repo shipped with before the explicit-heap
 * rewrite, reconstructed locally as the microbenchmark baseline:
 * std::function callbacks (which heap-allocate once the capture
 * outgrows the library's 16-24 byte inline buffer) in a
 * std::priority_queue (whose top() must be const_cast-moved to
 * extract a move-only payload, and whose pop() re-inspects the heap).
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return current; }

    void
    schedule(Tick when, Callback cb)
    {
        events.push(Event{when, nextSeq++, std::move(cb)});
    }

    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(current + delay, std::move(cb));
    }

    std::uint64_t eventsRun() const { return executed; }

    void
    runUntil(Tick end)
    {
        while (!events.empty() && events.top().when <= end) {
            Event ev = std::move(const_cast<Event &>(events.top()));
            events.pop();
            current = ev.when;
            ++executed;
            ev.cb();
        }
        if (current < end)
            current = end;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };
    struct After
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, After> events;
    Tick current = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

/**
 * A self-rescheduling event: the simulator's steady-state shape (each
 * activity completion schedules the next).  `Pad` sizes the capture:
 * the default mirrors the typical this-plus-a-few-ints capture and
 * stays within EventCallback's 48-byte inline buffer; 64 forces the
 * spill path (and, on the legacy queue, a std::function allocation).
 */
template <typename Queue, std::size_t Pad = 8> struct SelfSched
{
    Queue *q;
    std::uint64_t *remaining;
    unsigned char pad[Pad] = {};

    void
    operator()()
    {
        if (*remaining > 0) {
            --*remaining;
            q->scheduleAfter(100, SelfSched(*this));
        }
    }
};

template <typename Queue, std::size_t Pad>
void
runEventQueueBench(benchmark::State &state)
{
    const int fanout = static_cast<int>(state.range(0));
    constexpr std::uint64_t perIter = 16384;
    std::uint64_t total = 0;
    for (auto _ : state) {
        Queue q;
        std::uint64_t remaining = perIter;
        for (int i = 0; i < fanout; ++i)
            q.scheduleAfter(i, SelfSched<Queue, Pad>{&q, &remaining});
        q.runUntil(std::numeric_limits<Tick>::max());
        total += q.eventsRun();
        benchmark::DoNotOptimize(q.now());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
}

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    runEventQueueBench<sim::EventQueue, 8>(state);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(16)->Arg(256);

void
BM_EventQueueScheduleRunSpilled(benchmark::State &state)
{
    runEventQueueBench<sim::EventQueue, 64>(state);
}
BENCHMARK(BM_EventQueueScheduleRunSpilled)->Arg(16)->Arg(256);

/**
 * The pay-for-use check: the same workload with the engine profiler
 * attached at its default 1-in-1024 sampling.  The acceptance budget
 * is < 5% over BM_EventQueueScheduleRun.
 */
void
BM_EventQueueScheduleRunProfiled(benchmark::State &state)
{
    const int fanout = static_cast<int>(state.range(0));
    constexpr std::uint64_t perIter = 16384;
    std::uint64_t total = 0;
    for (auto _ : state) {
        obs::EngineProfiler prof;
        prof.beginRun();
        sim::EventQueue q;
        q.attachProfiler(&prof);
        std::uint64_t remaining = perIter;
        for (int i = 0; i < fanout; ++i)
            q.scheduleAfter(
                i, SelfSched<sim::EventQueue, 8>{&q, &remaining});
        q.runUntil(std::numeric_limits<Tick>::max());
        total += q.eventsRun();
        prof.finishRun(q.size());
        benchmark::DoNotOptimize(prof.profile().pushes);
        benchmark::DoNotOptimize(q.now());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_EventQueueScheduleRunProfiled)->Arg(16)->Arg(256);

/**
 * The pending-event-set policy comparison the ladder queue exists
 * for: thousands of concurrently pending events, where the heap pays
 * an O(log n) sift of 80-byte events per operation and the ladder
 * stays amortized O(1).  Same self-rescheduling workload as above at
 * fanouts 4096..65536; the acceptance target is >= 3x ladder over
 * heap at 4096 pending and 5-10x at 65536.
 */
void
runHighPendingBench(benchmark::State &state, sim::QueueKind kind)
{
    const int fanout = static_cast<int>(state.range(0));
    constexpr std::uint64_t perIter = 262144;
    std::uint64_t total = 0;
    for (auto _ : state) {
        sim::EventQueue q(kind,
                          static_cast<std::size_t>(fanout) * 2);
        std::uint64_t remaining = perIter;
        for (int i = 0; i < fanout; ++i)
            q.scheduleAfter(
                i, SelfSched<sim::EventQueue, 8>{&q, &remaining});
        q.runUntil(std::numeric_limits<Tick>::max());
        total += q.eventsRun();
        benchmark::DoNotOptimize(q.now());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
}

/**
 * The pending set alone, stripped of callback construction and
 * dispatch (which cost the same under either policy and compress the
 * engine-level ratio above): raw (when, seq)-ordered events of the
 * engine's 80-byte shape cycling through pop-then-reschedule.  This
 * is where the O(log n) sift vs amortized-O(1) ladder gap shows at
 * full size — the heap pays ~2 log2(n) comparisons and log2(n)
 * 80-byte moves per pop over a multi-megabyte working set.
 */
struct RawEvent
{
    Tick when;
    std::uint64_t seq;
    unsigned char payload[64];
};

void
BM_EventQueuePendingSetHeap(benchmark::State &state)
{
    const int fanout = static_cast<int>(state.range(0));
    constexpr std::uint64_t perIter = 262144;
    struct After
    {
        bool
        operator()(const RawEvent &a, const RawEvent &b) const
        {
            return a.when != b.when ? a.when > b.when
                                    : a.seq > b.seq;
        }
    };
    std::uint64_t total = 0;
    for (auto _ : state) {
        std::priority_queue<RawEvent, std::vector<RawEvent>, After>
            q;
        std::uint64_t seq = 0;
        for (int i = 0; i < fanout; ++i)
            q.push(RawEvent{i, seq++, {}});
        for (std::uint64_t n = 0; n < perIter; ++n) {
            RawEvent ev =
                std::move(const_cast<RawEvent &>(q.top()));
            q.pop();
            ev.when += 100;
            ev.seq = seq++;
            q.push(std::move(ev));
        }
        total += perIter;
        benchmark::DoNotOptimize(q.top().when);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_EventQueuePendingSetHeap)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

void
BM_EventQueuePendingSetLadder(benchmark::State &state)
{
    const int fanout = static_cast<int>(state.range(0));
    constexpr std::uint64_t perIter = 262144;
    std::uint64_t total = 0;
    for (auto _ : state) {
        sim::LadderQueue<RawEvent> q(
            static_cast<std::size_t>(fanout) * 2);
        std::uint64_t seq = 0;
        for (int i = 0; i < fanout; ++i)
            q.push(RawEvent{i, seq++, {}});
        for (std::uint64_t n = 0; n < perIter; ++n) {
            RawEvent ev = q.pop();
            ev.when += 100;
            ev.seq = seq++;
            q.push(std::move(ev));
        }
        total += perIter;
        benchmark::DoNotOptimize(q.front().when);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_EventQueuePendingSetLadder)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

void
BM_EventQueueHighPendingHeap(benchmark::State &state)
{
    runHighPendingBench(state, sim::QueueKind::Heap);
}
BENCHMARK(BM_EventQueueHighPendingHeap)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

void
BM_EventQueueHighPendingLadder(benchmark::State &state)
{
    runHighPendingBench(state, sim::QueueKind::Ladder);
}
BENCHMARK(BM_EventQueueHighPendingLadder)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

void
BM_EventQueueLegacy(benchmark::State &state)
{
    runEventQueueBench<LegacyEventQueue, 8>(state);
}
BENCHMARK(BM_EventQueueLegacy)->Arg(16)->Arg(256);

void
BM_EventQueueLegacySpilled(benchmark::State &state)
{
    runEventQueueBench<LegacyEventQueue, 64>(state);
}
BENCHMARK(BM_EventQueueLegacySpilled)->Arg(16)->Arg(256);

void
BM_KernelSimulation(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Experiment e;
        e.arch = models::Arch::II;
        e.local = true;
        e.conversations = 2;
        e.computeUs = 1140;
        e.warmupUs = 20000;
        e.measureUs = 200000;
        const auto o = sim::runExperiment(e);
        benchmark::DoNotOptimize(o.throughputPerSec);
    }
}
BENCHMARK(BM_KernelSimulation);

} // namespace

/**
 * Expanded BENCHMARK_MAIN() so this binary honors the same
 * `--json <path>` flag as every other bench: it maps onto google
 * benchmark's native JSON reporter flags before initialization.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv, argv + argc);
    for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--json" && i + 1 < args.size()) {
            const std::string path = args[i + 1];
            args.erase(args.begin() + static_cast<long>(i),
                       args.begin() + static_cast<long>(i) + 2);
            args.push_back("--benchmark_out=" + path);
            args.push_back("--benchmark_out_format=json");
            break;
        }
    }
    std::vector<char *> cargs;
    for (std::string &a : args)
        cargs.push_back(a.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
