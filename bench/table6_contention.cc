/**
 * @file
 * Regenerates Table 6.2 — the shared-memory contention model of
 * §6.6.2 (Fig 6.8): completion times of the architecture-I client-node
 * activities when all four overlap, solved exactly on the low-level
 * GTPN.  Also demonstrates the architecture-IV effect: partitioning
 * the memory reduces interference between activities that touch
 * different data structures.
 *
 * The three exact GTPN contention solves are independent and fan out
 * over `--jobs` workers; tables render afterwards in input order.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common/bench_main.hh"
#include "common/parallel/parallel.hh"
#include "common/table.hh"
#include "core/models/contention.hh"

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "table6_contention");
    using namespace hsipc;
    using namespace hsipc::models;

    const auto acts = archIClientActivities();
    // The architecture-IV ablation: the same two memory-hungry
    // activities on one bus vs on split partitions.
    const std::vector<Activity> shared = {
        {"MpKernelBuffers", 500, 100, 0},
        {"HostControlBlocks", 500, 100, 0},
    };
    std::vector<Activity> split = shared;
    split[1].bus = 1;

    const std::vector<std::function<ContentionResult()>> tasks = {
        [&acts]() { return solveContention(acts); },
        [&shared]() { return solveContention(shared, 1); },
        [&split]() { return solveContention(split, 2); },
    };
    const std::vector<ContentionResult> solved =
        parallel::runAll<ContentionResult>(bench::jobs(), tasks);

    {
        const ContentionResult &r = solved[0];
        // Table 6.2's "Contention" column.
        const double paper[] = {1314.9, 235.2, 235.2, 982.0};

        TextTable t("Table 6.2 - Architecture I: Non-local "
                    "Conversation (Client Contention)");
        t.header({"Activity", "Processing", "Shared mem", "Best",
                  "Contention", "paper"});
        for (std::size_t i = 0; i < acts.size(); ++i) {
            t.row({acts[i].name, TextTable::num(acts[i].processing, 0),
                   TextTable::num(acts[i].memory, 0),
                   TextTable::num(r.best[i], 0),
                   TextTable::num(r.contention[i], 1),
                   TextTable::num(paper[i], 1)});
        }
        std::printf("%s\n", t.render().c_str());
        hsipc::bench::record(t);
    }

    {
        const ContentionResult &one = solved[1];
        const ContentionResult &two = solved[2];

        TextTable t("Partitioned smart bus ablation (cf. Fig 6.4)");
        t.header({"Activity", "Best", "One bus", "Two buses"});
        for (std::size_t i = 0; i < shared.size(); ++i) {
            t.row({shared[i].name, TextTable::num(one.best[i], 0),
                   TextTable::num(one.contention[i], 1),
                   TextTable::num(two.contention[i], 1)});
        }
        std::printf("%s", t.render().c_str());
        hsipc::bench::record(t);
    }
    return hsipc::bench::finish();
}
