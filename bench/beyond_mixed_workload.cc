/**
 * @file
 * Beyond the thesis: mixed local + non-local traffic on one pair of
 * nodes.
 *
 * §6.6.3 concedes that "in reality clients and servers co-exist in
 * each node" but separates the local and non-local models "to keep
 * the model complexity within manageable limits".  The event-driven
 * simulator has no such limit: this bench sweeps the local/remote mix
 * at a fixed total of 4 conversations per node pair and shows how the
 * architectures rank when the workloads interleave — the regime the
 * published figures never covered.
 *
 * The 15 simulations run through the sweep runner (`--jobs N`);
 * outcomes land by input index and the table renders afterwards,
 * byte-identical at any jobs level.
 */

#include <cstdio>
#include <vector>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "sim/runner/bench_profile.hh"
#include "sim/runner/sweep_runner.hh"

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "beyond_mixed_workload");
    using namespace hsipc;
    using namespace hsipc::models;

    constexpr Arch archs[] = {Arch::I, Arch::II, Arch::III};

    std::vector<sim::Experiment> exps;
    for (int remote = 0; remote <= 4; ++remote) {
        for (Arch a : archs) {
            sim::Experiment e;
            e.arch = a;
            e.mixedLocal = 4 - remote;
            e.mixedRemote = remote;
            e.computeUs = 1710;
            exps.push_back(e);
        }
    }
    sim::applyBenchProfile(exps);
    const std::vector<sim::Outcome> outcomes =
        sim::runSweep(exps, bench::jobs());
    sim::writeBenchProfile(outcomes);

    TextTable t("Mixed local/remote workload (4 conversations total, "
                "X = 1.71 ms): messages/sec");
    t.header({"Local", "Remote", "Arch I", "Arch II", "Arch III",
              "III RT p95 (ms)"});
    std::size_t cell = 0;
    for (int remote = 0; remote <= 4; ++remote) {
        const int local = 4 - remote;
        std::vector<std::string> row{std::to_string(local),
                                     std::to_string(remote)};
        double p95 = 0;
        for (Arch a : archs) {
            const sim::Outcome &o = outcomes[cell++];
            row.push_back(TextTable::num(o.throughputPerSec, 1));
            if (a == Arch::III)
                p95 = o.rtP95Us;
        }
        row.push_back(TextTable::num(p95 / 1000.0, 2));
        t.row(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    hsipc::bench::record(t);
    std::printf("  Both nodes run clients and servers; remote pairs "
                "cross the network in both directions.\n  The smart "
                "bus keeps its lead across every mix — the result the "
                "thesis argued for but could not model.\n");
    return hsipc::bench::finish();
}
