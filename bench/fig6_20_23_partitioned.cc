/**
 * @file
 * Regenerates Figures 6.20-6.23: architecture III (single smart bus)
 * versus architecture IV (partitioned smart bus) under maximum load
 * and realistic workloads, local and non-local.
 *
 * Expected result (§6.9.3): the partitioned organization does NOT
 * perform significantly better — shared-memory access is not the
 * bottleneck, processing time is.
 *
 * Each (figure, row, arch) cell is an independent model solve; the
 * grid fans out over `--jobs` workers and is rendered in input order,
 * so the output is byte-identical at any jobs level.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common/bench_main.hh"
#include "common/parallel/parallel.hh"
#include "common/table.hh"
#include "core/models/solution.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::models;

const std::vector<double> realistic_server_us = {570, 1710, 5700};

double
solveCell(Arch a, bool local, int n, double x)
{
    return (local ? solveLocal(a, n, x).throughputPerUs
                  : solveNonlocal(a, n, x).throughputPerUs) * 1e6;
}

void
maxLoad(const char *title, const std::vector<double> &thr,
        std::size_t &cell)
{
    TextTable t(title);
    t.header({"Conversations", "Arch III", "Arch IV", "IV/III"});
    for (int n = 1; n <= 4; ++n) {
        const double t3 = thr[cell++];
        const double t4 = thr[cell++];
        t.row({std::to_string(n), TextTable::num(t3, 1),
               TextTable::num(t4, 1), TextTable::num(t4 / t3, 3)});
    }
    std::printf("%s\n", t.render().c_str());
    hsipc::bench::record(t);
}

void
realistic(const char *title, const std::vector<double> &thr,
          std::size_t &cell)
{
    TextTable t(title);
    t.header({"Server X (ms)", "Conv", "Arch III", "Arch IV",
              "IV/III"});
    for (double x : realistic_server_us) {
        for (int n : {2, 4}) {
            const double t3 = thr[cell++];
            const double t4 = thr[cell++];
            t.row({TextTable::num(x / 1000.0, 2), std::to_string(n),
                   TextTable::num(t3, 1), TextTable::num(t4, 1),
                   TextTable::num(t4 / t3, 3)});
        }
    }
    std::printf("%s\n", t.render().c_str());
    hsipc::bench::record(t);
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "fig6_20_23_partitioned");

    // Cell order matches the rendering order below: the two max-load
    // figures (III, IV per row), then the two realistic figures.
    std::vector<std::function<double()>> tasks;
    for (bool local : {true, false}) {
        for (int n = 1; n <= 4; ++n) {
            for (Arch a : {Arch::III, Arch::IV}) {
                tasks.push_back(
                    [a, local, n]() { return solveCell(a, local, n, 0); });
            }
        }
    }
    for (bool local : {true, false}) {
        for (double x : realistic_server_us) {
            for (int n : {2, 4}) {
                for (Arch a : {Arch::III, Arch::IV}) {
                    tasks.push_back([a, local, n, x]() {
                        return solveCell(a, local, n, x);
                    });
                }
            }
        }
    }
    const std::vector<double> thr =
        parallel::runAll<double>(bench::jobs(), tasks);

    std::size_t cell = 0;
    maxLoad("Figure 6.20 - Maximum Load (III & IV: Local), "
            "messages/sec",
            thr, cell);
    maxLoad("Figure 6.21 - Maximum Load (III & IV: Non-local), "
            "messages/sec",
            thr, cell);
    realistic("Figure 6.22 - Realistic Load (III & IV: Local), "
              "messages/sec",
              thr, cell);
    realistic("Figure 6.23 - Realistic Load (III & IV: "
              "Non-local), messages/sec",
              thr, cell);
    return hsipc::bench::finish();
}
