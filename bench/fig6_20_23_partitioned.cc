/**
 * @file
 * Regenerates Figures 6.20-6.23: architecture III (single smart bus)
 * versus architecture IV (partitioned smart bus) under maximum load
 * and realistic workloads, local and non-local.
 *
 * Expected result (§6.9.3): the partitioned organization does NOT
 * perform significantly better — shared-memory access is not the
 * bottleneck, processing time is.
 */

#include <cstdio>
#include <vector>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "core/models/solution.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::models;

void
maxLoad(bool local, const char *title)
{
    TextTable t(title);
    t.header({"Conversations", "Arch III", "Arch IV", "IV/III"});
    for (int n = 1; n <= 4; ++n) {
        const double t3 = (local ? solveLocal(Arch::III, n, 0)
                                     .throughputPerUs
                                 : solveNonlocal(Arch::III, n, 0)
                                       .throughputPerUs) * 1e6;
        const double t4 = (local ? solveLocal(Arch::IV, n, 0)
                                     .throughputPerUs
                                 : solveNonlocal(Arch::IV, n, 0)
                                       .throughputPerUs) * 1e6;
        t.row({std::to_string(n), TextTable::num(t3, 1),
               TextTable::num(t4, 1), TextTable::num(t4 / t3, 3)});
    }
    std::printf("%s\n", t.render().c_str());
    hsipc::bench::record(t);
}

void
realistic(bool local, const char *title)
{
    const std::vector<double> server_us = {570, 1710, 5700};
    TextTable t(title);
    t.header({"Server X (ms)", "Conv", "Arch III", "Arch IV",
              "IV/III"});
    for (double x : server_us) {
        for (int n : {2, 4}) {
            const double t3 = (local ? solveLocal(Arch::III, n, x)
                                         .throughputPerUs
                                     : solveNonlocal(Arch::III, n, x)
                                           .throughputPerUs) * 1e6;
            const double t4 = (local ? solveLocal(Arch::IV, n, x)
                                         .throughputPerUs
                                     : solveNonlocal(Arch::IV, n, x)
                                           .throughputPerUs) * 1e6;
            t.row({TextTable::num(x / 1000.0, 2), std::to_string(n),
                   TextTable::num(t3, 1), TextTable::num(t4, 1),
                   TextTable::num(t4 / t3, 3)});
        }
    }
    std::printf("%s\n", t.render().c_str());
    hsipc::bench::record(t);
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "fig6_20_23_partitioned");
    maxLoad(true, "Figure 6.20 - Maximum Load (III & IV: Local), "
                  "messages/sec");
    maxLoad(false, "Figure 6.21 - Maximum Load (III & IV: Non-local), "
                   "messages/sec");
    realistic(true, "Figure 6.22 - Realistic Load (III & IV: Local), "
                    "messages/sec");
    realistic(false, "Figure 6.23 - Realistic Load (III & IV: "
                     "Non-local), messages/sec");
    return hsipc::bench::finish();
}
