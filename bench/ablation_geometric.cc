/**
 * @file
 * Ablation: the geometric approximation of large constant delays
 * (§6.6.1, Fig 6.7).
 *
 * The thesis replaces every deterministic processing time by a
 * geometric delay of equal mean to keep the GTPN state space small,
 * and asserts the approximation is good for mean throughput.  Here we
 * quantify it: a closed two-stage cycle where one stage is either an
 * exact constant delay or its geometric approximation, across delay
 * magnitudes and token populations — plus the time-scale invariance
 * the solver layer relies on.
 *
 * Every GTPN solve is independent, so both grids fan out over
 * `--jobs` workers and render afterwards in input order.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common/bench_main.hh"
#include "common/parallel/parallel.hh"
#include "common/table.hh"
#include "core/gtpn/analyzer.hh"
#include "core/models/solution.hh"

namespace
{

using namespace hsipc::gtpn;

double
cycleThroughput(int tokens, int delay, bool geometric)
{
    PetriNet net;
    const PlaceId a = net.addPlace("A", tokens);
    const PlaceId b = net.addPlace("B");
    const PlaceId server = net.addPlace("Server", 1);

    // Measured stage: a single server with a 3-unit service.
    const TransId svc = net.addTransition("svc", 3.0, 1.0, "Lambda");
    net.inputArc(b, svc);
    net.inputArc(server, svc);
    net.outputArc(svc, a);
    net.outputArc(svc, server);

    if (geometric) {
        const double mean = delay;
        const TransId exit = net.addTransition("exit", 1.0, 1.0 / mean);
        net.inputArc(a, exit);
        net.outputArc(exit, b);
        const TransId loop =
            net.addTransition("loop", 1.0, 1.0 - 1.0 / mean);
        net.inputArc(a, loop);
        net.outputArc(loop, a);
        (void)exit; (void)loop;
    } else {
        const TransId think = net.addTransition(
            "think", static_cast<double>(delay), 1.0);
        net.inputArc(a, think);
        net.outputArc(think, b);
        (void)think;
    }
    return analyze(net).usage("Lambda") / 3.0; // completions per unit
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "ablation_geometric");
    using hsipc::TextTable;
    using namespace hsipc::models;

    // Grid 1: (tokens, delay) x {constant, geometric}.
    std::vector<std::function<double()>> cycleTasks;
    for (int tokens : {1, 2, 3}) {
        for (int delay : {5, 20, 80}) {
            for (bool geometric : {false, true}) {
                cycleTasks.push_back([tokens, delay, geometric]() {
                    return cycleThroughput(tokens, delay, geometric);
                });
            }
        }
    }
    // Grid 2: the time-scale invariance sweep.
    const std::vector<double> scales = {2.0, 5.0, 10.0, 20.0};
    std::vector<std::function<LocalSolution()>> scaleTasks;
    for (double scale : scales) {
        scaleTasks.push_back([scale]() {
            SolveConfig cfg;
            cfg.timeScale = scale;
            return solveLocal(Arch::III, 2, 1710.0, cfg);
        });
    }
    const std::vector<double> cyc =
        hsipc::parallel::runAll<double>(hsipc::bench::jobs(),
                                        cycleTasks);
    const std::vector<LocalSolution> inv =
        hsipc::parallel::runAll<LocalSolution>(hsipc::bench::jobs(),
                                               scaleTasks);

    TextTable t("Geometric vs constant delay (closed cycle, 3-unit "
                "single server): completions per time unit");
    t.header({"Tokens", "Think delay", "Constant", "Geometric",
              "error %"});
    std::size_t cell = 0;
    for (int tokens : {1, 2, 3}) {
        for (int delay : {5, 20, 80}) {
            const double c = cyc[cell++];
            const double g = cyc[cell++];
            t.row({std::to_string(tokens), std::to_string(delay),
                   TextTable::num(c, 5), TextTable::num(g, 5),
                   TextTable::num(100.0 * (g - c) / c, 2)});
        }
    }
    std::printf("%s\n", t.render().c_str());
    hsipc::bench::record(t);

    // Time-scale invariance of the architecture models.
    TextTable s("Model granularity (Arch III local, 2 conversations, "
                "X = 1.71 ms)");
    s.header({"timeScale (us/unit)", "msgs/s", "states"});
    for (std::size_t i = 0; i < scales.size(); ++i) {
        const LocalSolution &r = inv[i];
        s.row({TextTable::num(scales[i], 0),
               TextTable::num(r.throughputPerUs * 1e6, 1),
               std::to_string(r.states)});
    }
    std::printf("%s", s.render().c_str());
    hsipc::bench::record(s);
    return hsipc::bench::finish();
}
