/**
 * @file
 * Regenerates the round-trip step tables of chapter 6 (Tables 6.4,
 * 6.6, 6.9, 6.11, 6.14, 6.16, 6.19, 6.21): the processing steps of
 * one conversation under each architecture, with contention-free and
 * contention-inflated completion times, plus the derived fixed
 * round-trip overhead.
 *
 * Each of the eight step tables is solved independently (the
 * contention column requires a GTPN solve), so the solves fan out over
 * `--jobs` workers; the tables render afterwards in thesis order.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common/bench_main.hh"
#include "common/parallel/parallel.hh"
#include "common/table.hh"
#include "core/models/processing_times.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::models;

// The precomputed pieces of one step table: the solved steps plus the
// derived fixed round-trip overhead.
struct SolvedTable
{
    std::vector<Step> steps;
    double best = 0;
};

void
printStepTable(Arch a, bool local, const char *table_no,
               const SolvedTable &solved)
{
    TextTable t(std::string("Table ") + table_no + " - " +
                archName(a) + (local ? ": Local" : ": Non-local") +
                " Conversation (microseconds)");
    const bool split = a == Arch::IV;
    if (split) {
        t.header({"Proc", "Initiator", "#", "Description", "Processing",
                  "KB", "TCB", "Best", "Contention"});
    } else {
        t.header({"Proc", "Initiator", "#", "Description", "Processing",
                  "Shared mem", "Best", "Contention"});
    }
    for (const Step &s : solved.steps) {
        if (s.workload) {
            if (split) {
                t.row({s.processor, s.initiator, s.number,
                       "Compute (workload parameter X)", "-", "-", "-",
                       "-", "-"});
            } else {
                t.row({s.processor, s.initiator, s.number,
                       "Compute (workload parameter X)", "-", "-", "-",
                       "-"});
            }
            continue;
        }
        if (split) {
            t.row({s.processor, s.initiator, s.number, s.description,
                   TextTable::num(s.processing, 0),
                   TextTable::num(s.kbAccess, 0),
                   TextTable::num(s.tcbAccess, 0),
                   TextTable::num(s.best(), 0),
                   TextTable::num(s.contention, 1)});
        } else {
            t.row({s.processor, s.initiator, s.number, s.description,
                   TextTable::num(s.processing, 0),
                   TextTable::num(s.shmem(), 0),
                   TextTable::num(s.best(), 0),
                   TextTable::num(s.contention, 1)});
        }
    }
    std::printf("%s  fixed round-trip overhead (sum of Best): %.0f "
                "us\n\n",
                t.render().c_str(), solved.best);
    hsipc::bench::record(t);
}

struct TableSpec
{
    Arch arch;
    bool local;
    const char *table_no;
};

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "table6_roundtrips");

    const std::vector<TableSpec> specs = {
        {Arch::I, true, "6.4"},    {Arch::I, false, "6.6"},
        {Arch::II, true, "6.9"},   {Arch::II, false, "6.11"},
        {Arch::III, true, "6.14"}, {Arch::III, false, "6.16"},
        {Arch::IV, true, "6.19"},  {Arch::IV, false, "6.21"},
    };
    std::vector<std::function<SolvedTable()>> tasks;
    for (const TableSpec &s : specs) {
        tasks.push_back([s]() {
            return SolvedTable{stepTable(s.arch, s.local),
                               roundTripBest(s.arch, s.local)};
        });
    }
    const std::vector<SolvedTable> solved =
        parallel::runAll<SolvedTable>(bench::jobs(), tasks);

    for (std::size_t i = 0; i < specs.size(); ++i)
        printStepTable(specs[i].arch, specs[i].local, specs[i].table_no,
                       solved[i]);
    return hsipc::bench::finish();
}
