/**
 * @file
 * Regenerates the round-trip step tables of chapter 6 (Tables 6.4,
 * 6.6, 6.9, 6.11, 6.14, 6.16, 6.19, 6.21): the processing steps of
 * one conversation under each architecture, with contention-free and
 * contention-inflated completion times, plus the derived fixed
 * round-trip overhead.
 */

#include <cstdio>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "core/models/processing_times.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::models;

void
printStepTable(Arch a, bool local, const char *table_no)
{
    TextTable t(std::string("Table ") + table_no + " - " +
                archName(a) + (local ? ": Local" : ": Non-local") +
                " Conversation (microseconds)");
    const bool split = a == Arch::IV;
    if (split) {
        t.header({"Proc", "Initiator", "#", "Description", "Processing",
                  "KB", "TCB", "Best", "Contention"});
    } else {
        t.header({"Proc", "Initiator", "#", "Description", "Processing",
                  "Shared mem", "Best", "Contention"});
    }
    for (const Step &s : stepTable(a, local)) {
        if (s.workload) {
            if (split) {
                t.row({s.processor, s.initiator, s.number,
                       "Compute (workload parameter X)", "-", "-", "-",
                       "-", "-"});
            } else {
                t.row({s.processor, s.initiator, s.number,
                       "Compute (workload parameter X)", "-", "-", "-",
                       "-"});
            }
            continue;
        }
        if (split) {
            t.row({s.processor, s.initiator, s.number, s.description,
                   TextTable::num(s.processing, 0),
                   TextTable::num(s.kbAccess, 0),
                   TextTable::num(s.tcbAccess, 0),
                   TextTable::num(s.best(), 0),
                   TextTable::num(s.contention, 1)});
        } else {
            t.row({s.processor, s.initiator, s.number, s.description,
                   TextTable::num(s.processing, 0),
                   TextTable::num(s.shmem(), 0),
                   TextTable::num(s.best(), 0),
                   TextTable::num(s.contention, 1)});
        }
    }
    std::printf("%s  fixed round-trip overhead (sum of Best): %.0f "
                "us\n\n",
                t.render().c_str(), roundTripBest(a, local));
    hsipc::bench::record(t);
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "table6_roundtrips");
    printStepTable(Arch::I, true, "6.4");
    printStepTable(Arch::I, false, "6.6");
    printStepTable(Arch::II, true, "6.9");
    printStepTable(Arch::II, false, "6.11");
    printStepTable(Arch::III, true, "6.14");
    printStepTable(Arch::III, false, "6.16");
    printStepTable(Arch::IV, true, "6.19");
    printStepTable(Arch::IV, false, "6.21");
    return hsipc::bench::finish();
}
