/**
 * @file
 * Beyond the thesis: open-arrival overload and graceful degradation.
 *
 * The thesis measures closed conversation loops: each client waits
 * for its reply, so offered load can never exceed capacity (§6.5).
 * This bench opens the arrival process — requests materialize at a
 * Poisson rate with a client-imposed deadline — and sweeps the rate
 * straight past each architecture's saturation knee.  Two variants
 * run at every rate: "no layer" (a deadline but no admission
 * control: the service queue grows without bound, served requests
 * have long expired, their replies return to nobody, and goodput
 * collapses) and "guarded" (a two-entry bounded service queue with
 * deadline-aware shedding: doomed attempts are dropped for 10 us
 * instead of being served for milliseconds, and goodput plateaus
 * near capacity).  A final section crashes the server node mid-run
 * under open load and lets deadlines, retries, and the at-most-once
 * reply cache recover the conversations.
 *
 * The whole-run goodput numbers hide *when* the collapse happens, so
 * the Architecture I past-knee pair and the crash runs additionally
 * record 10 ms timelines (`Experiment.timelineIntervalUs`): a closing
 * table shows windowed goodput — the unguarded run decaying as its
 * backlog builds, the guarded plateau holding flat, and the crash
 * run's outage dip and recovery ramp.  When `--json` is given, the
 * Architecture I crash run also writes its full timeline document
 * next to the bench document (`<name>_timeline.json`) for
 * tools/report.py; bench_compare.py never gates timeline files.
 *
 * All simulations are one sweep through the runner (`--jobs N`);
 * outcomes land by input index and the tables render afterwards,
 * byte-identical at any jobs level.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "sim/runner/bench_profile.hh"
#include "sim/runner/sweep_runner.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::models;

/**
 * Open arrivals at a two-server node.  computeUs dominates so the
 * service host — not the client's send path — is the bottleneck,
 * and the buffer pool is large so admission control, not client-side
 * buffer exhaustion, decides the outcome.
 */
sim::Experiment
base(Arch a, double ratePerSec)
{
    sim::Experiment e;
    e.arch = a;
    e.local = false;
    e.conversations = 2; // server pool
    e.computeUs = 6000;
    e.kernelBuffers = 64;
    e.warmupUs = 20000;
    e.measureUs = 400000;
    e.seed = 42;
    e.arrivalMode = 1;
    e.arrivalRatePerSec = ratePerSec;
    e.deadlineUs = 40000;
    return e;
}

const char *
archLabel(Arch a)
{
    switch (a) {
    case Arch::I: return "I";
    case Arch::II: return "II";
    case Arch::III: return "III";
    case Arch::IV: return "IV";
    }
    return "?";
}

/**
 * Architecture I does every kernel step on its single host, so its
 * service time per trip (~10 ms) and therefore its knee sit far
 * below the coprocessor architectures' (~7 ms): sweep it on a lower
 * rate grid so both straddle their knees the same way.
 */
std::vector<double>
rateGrid(Arch a)
{
    if (a == Arch::I)
        return {30, 60, 90, 150, 250};
    return {50, 100, 150, 250, 400};
}

/**
 * The grid point used for the headline past-the-knee scalars: the
 * fourth of five rates, ~1.7-2x each architecture's capacity.  The
 * fifth rate is reported too, but there the client node itself
 * saturates and requests expire before any admission decision —
 * beyond what server-side shedding can save.
 */
constexpr std::size_t kAcceptIdx = 3;

/** Timeline bin width for the time-resolved section. */
constexpr double kTimelineBinUs = 10000;

/** Bins per row of the windowed-goodput table (5 x 10 ms = 50 ms). */
constexpr std::size_t kWindowBins = 5;

/**
 * Sibling path for the committed timeline artifact: the `--json`
 * path with a `_timeline` stem suffix ("" when --json was absent).
 */
std::string
timelinePath()
{
    const std::string &jp = hsipc::bench::jsonPath();
    if (jp.empty())
        return "";
    const std::size_t dot = jp.rfind(".json");
    const std::string stem =
        dot == std::string::npos ? jp : jp.substr(0, dot);
    return stem + "_timeline.json";
}

/** Events/sec of counter @p name over timeline bins [b0, b1). */
double
windowRate(const sim::Outcome &o, const std::string &name,
           std::size_t b0, std::size_t b1)
{
    const auto it = o.timeline.counters.find(name);
    if (it == o.timeline.counters.end())
        return 0;
    b1 = std::min(b1, it->second.size());
    if (b0 >= b1)
        return 0;
    double sum = 0;
    for (std::size_t b = b0; b < b1; ++b)
        sum += it->second[b];
    return sum / (double(b1 - b0) * o.timeline.intervalUs * 1e-6);
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "beyond_overload");
    using sim::Outcome;

    constexpr Arch archs[] = {Arch::I, Arch::II, Arch::III, Arch::IV};

    // One flat experiment list in rendering order: per architecture
    // the rate sweep as (no-layer, guarded) pairs, then the two
    // crash-under-load runs.
    std::vector<sim::Experiment> exps;
    std::size_t tlNakedIdx = 0; // Arch I at the past-knee rate
    for (Arch a : archs) {
        const std::vector<double> rates = rateGrid(a);
        for (std::size_t i = 0; i < rates.size(); ++i) {
            sim::Experiment naked = base(a, rates[i]);
            sim::Experiment g = base(a, rates[i]);
            g.svcQueueCap = 2;
            g.shedPolicy = 2; // deadline-aware
            if (a == Arch::I && i == kAcceptIdx) {
                // The pair the time-resolved table dissects.
                tlNakedIdx = exps.size();
                naked.timelineIntervalUs = kTimelineBinUs;
                g.timelineIntervalUs = kTimelineBinUs;
            }
            exps.push_back(naked);
            exps.push_back(g);
        }
    }
    const std::size_t tlCrashIdx = exps.size(); // Arch I crash run
    for (auto [a, rate] : {std::pair{Arch::I, 60.0}, {Arch::III, 100.0}}) {
        sim::Experiment e = base(a, rate);
        e.deadlineUs = 60000;
        e.retryBudget = 2;
        e.retryBackoffUs = 15000;
        e.retryBackoffMaxUs = 60000;
        e.svcQueueCap = 4;
        e.shedPolicy = 2;
        e.crashSchedule.push_back({1, 100000, 130000});
        e.timelineIntervalUs = kTimelineBinUs;
        if (a == Arch::I)
            e.timelineFile = timelinePath(); // "" = don't write
        exps.push_back(e);
    }

    sim::SweepOptions opts;
    opts.jobs = hsipc::bench::jobs();
    sim::applyBenchProfile(exps);
    const std::vector<Outcome> outs =
        sim::SweepRunner(opts).run(exps);
    sim::writeBenchProfile(outs);

    std::size_t at = 0;
    for (Arch a : archs) {
        TextTable t(std::string("Open-arrival overload, Architecture ") +
                    archLabel(a) +
                    " (2 servers, X = 6 ms, deadline 40 ms): "
                    "goodput/sec without vs with deadline-aware "
                    "admission control (cap 2)");
        t.header({"Rate/s", "Offered/s", "No layer", "Guarded",
                  "Shed att.", "Expired", "Orphaned"});
        double peakNaked = 0, peakGuarded = 0;
        double kneeNaked = 0, kneeGuarded = 0;
        const std::vector<double> rates = rateGrid(a);
        for (std::size_t i = 0; i < rates.size(); ++i) {
            const Outcome &naked = outs[at++];
            const Outcome &guarded = outs[at++];
            t.row({TextTable::num(rates[i], 0),
                   TextTable::num(guarded.rpc.offeredPerSec, 1),
                   TextTable::num(naked.rpc.goodputPerSec, 1),
                   TextTable::num(guarded.rpc.goodputPerSec, 1),
                   TextTable::num(double(guarded.rpc.shedAttempts), 0),
                   TextTable::num(double(guarded.rpc.expired), 0),
                   TextTable::num(double(naked.rpc.orphanedReplies), 0)});
            peakNaked = std::max(peakNaked, naked.rpc.goodputPerSec);
            peakGuarded =
                std::max(peakGuarded, guarded.rpc.goodputPerSec);
            if (i == kAcceptIdx) {
                kneeNaked = naked.rpc.goodputPerSec;
                kneeGuarded = guarded.rpc.goodputPerSec;
            }
        }
        hsipc::bench::emit(t);
        // Past-the-knee headline: the guarded goodput holds near its
        // peak while the unguarded one collapses.
        hsipc::bench::note(
            std::string("plateau_") + archLabel(a),
            peakGuarded > 0 ? kneeGuarded / peakGuarded : 0);
        hsipc::bench::note(
            std::string("collapse_") + archLabel(a),
            peakNaked > 0 ? kneeNaked / peakNaked : 0);
        std::printf("  Arch %-3s past the knee: guarded %.1f/s "
                    "(%.0f%% of peak %.1f), unguarded %.1f/s "
                    "(%.0f%% of peak %.1f)\n\n",
                    archLabel(a), kneeGuarded,
                    100 * kneeGuarded / peakGuarded, peakGuarded,
                    kneeNaked, 100 * kneeNaked / peakNaked, peakNaked);
    }

    TextTable c("Server-node crash under open load "
                "(30 ms outage at t = 100 ms; deadline 60 ms, "
                "2 retries, backoff 15 ms): recovery via retry and "
                "the at-most-once reply cache");
    c.header({"Arch", "Offered", "Completed", "Retries", "Dedup",
              "Replays", "Windows recovered", "Goodput/s"});
    for (auto [a, rate] : {std::pair{Arch::I, 60.0}, {Arch::III, 100.0}}) {
        (void)rate;
        const Outcome &o = outs[at++];
        c.row({archLabel(a),
               TextTable::num(double(o.rpc.offered), 0),
               TextTable::num(double(o.rpc.completed), 0),
               TextTable::num(double(o.rpc.retries), 0),
               TextTable::num(double(o.rpc.duplicatesSuppressed), 0),
               TextTable::num(double(o.rpc.replyReplays), 0),
               TextTable::num(double(o.crashWindowsRecovered), 0),
               TextTable::num(o.rpc.goodputPerSec, 1)});
        hsipc::bench::note(
            std::string("crash_recovered_") + archLabel(a),
            static_cast<double>(o.crashWindowsRecovered));
    }
    hsipc::bench::emit(c);

    // Time-resolved goodput: the shapes the whole-run numbers above
    // average away.  Columns come from the three 10 ms timelines:
    // Arch I at 150/s without and with admission control, and the
    // Arch I crash run (60/s, 30 ms outage at t = 100 ms).
    const Outcome &tlNaked = outs[tlNakedIdx];
    const Outcome &tlGuarded = outs[tlNakedIdx + 1];
    const Outcome &tlCrash = outs[tlCrashIdx];
    TextTable w("Windowed goodput, Architecture I (50 ms windows "
                "from 10 ms timelines): backlog decay without the "
                "layer, guarded plateau, crash dip and recovery");
    w.header({"Window ms", "No layer/s", "Guarded/s", "Crash run/s",
              "Crash retries/s"});
    const std::size_t bins = tlCrash.timeline.bins();
    for (std::size_t b0 = 0; b0 < bins; b0 += kWindowBins) {
        const std::size_t b1 = std::min(b0 + kWindowBins, bins);
        const double msPerBin = kTimelineBinUs / 1000.0;
        w.row({TextTable::num(double(b0) * msPerBin, 0) + "-" +
                   TextTable::num(double(b1) * msPerBin, 0),
               TextTable::num(
                   windowRate(tlNaked, "rpc.completed", b0, b1), 1),
               TextTable::num(
                   windowRate(tlGuarded, "rpc.completed", b0, b1), 1),
               TextTable::num(
                   windowRate(tlCrash, "rpc.completed", b0, b1), 1),
               TextTable::num(
                   windowRate(tlCrash, "rpc.retries", b0, b1), 1)});
    }
    hsipc::bench::emit(w);

    // Headline shape scalars: the unguarded run's endgame goodput as
    // a fraction of its opening window (decay toward zero as every
    // admitted request expires in queue), and the crash run's outage
    // goodput vs its recovered tail (dip, then ramp back).
    const std::size_t lastW = (bins / kWindowBins) * kWindowBins;
    const double nakedOpen = windowRate(tlNaked, "rpc.completed",
                                        kWindowBins, 2 * kWindowBins);
    const double nakedEnd =
        windowRate(tlNaked, "rpc.completed", lastW - kWindowBins, bins);
    hsipc::bench::note("tl_naked_decay",
                       nakedOpen > 0 ? nakedEnd / nakedOpen : 0);
    // Outage spans bins 10-12 (100-130 ms); recovery is the tail.
    const double crashOutage =
        windowRate(tlCrash, "rpc.completed", 10, 13);
    const double crashTail =
        windowRate(tlCrash, "rpc.completed", 20, bins);
    hsipc::bench::note("tl_crash_outage_goodput", crashOutage);
    hsipc::bench::note("tl_crash_recovered_goodput", crashTail);
    if (!tlCrash.timeline.enabled()) {
        std::fprintf(stderr,
                     "timeline missing from the crash run\n");
        return 1;
    }
    const std::string tlFile = timelinePath();
    if (!tlFile.empty())
        std::printf("\n  timeline document: %s "
                    "(render with tools/report.py)\n",
                    tlFile.c_str());

    return hsipc::bench::finish();
}
