/**
 * @file
 * Ablations of two modeling assumptions, on the kernel simulator:
 *
 * 1. "The network is not a bottleneck" (§6.6.4): the models fold only
 *    the DMA times into the round trip.  Sweeping the wire time of
 *    the 4 Mb/s token ring shows when that assumption breaks.
 * 2. Kernel buffering (§3.2.2): the thesis' kernels block senders
 *    when buffers run out; sweeping the pool size shows the cliff.
 *
 * All 14 simulations run through the sweep runner (`--jobs N`);
 * outcomes land by input index and the tables render afterwards,
 * byte-identical at any jobs level.
 */

#include <cstdio>
#include <vector>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "sim/runner/bench_profile.hh"
#include "sim/runner/sweep_runner.hh"

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "ablation_network_buffers");
    using namespace hsipc;
    using namespace hsipc::models;

    const std::vector<double> wires = {0.0, 88.0, 176.0, 704.0, 2816.0};
    const std::vector<double> rates = {16.0, 4.0, 1.0, 0.25};
    const std::vector<int> pools = {1, 2, 3, 6, 64};

    std::vector<sim::Experiment> exps;
    for (double wire : wires) {
        sim::Experiment e;
        e.arch = Arch::II;
        e.local = false;
        e.conversations = 4;
        e.computeUs = 1710;
        e.wireUs = wire;
        exps.push_back(e);
    }
    for (double mbps : rates) {
        sim::Experiment e;
        e.arch = Arch::II;
        e.local = false;
        e.conversations = 4;
        e.computeUs = 1710;
        e.useTokenRing = true;
        e.ringMbps = mbps;
        exps.push_back(e);
    }
    for (int buffers : pools) {
        sim::Experiment e;
        e.arch = Arch::II;
        e.local = true;
        e.conversations = 6;
        e.computeUs = 0;
        e.kernelBuffers = buffers;
        exps.push_back(e);
    }
    sim::applyBenchProfile(exps);
    const std::vector<sim::Outcome> outcomes =
        sim::runSweep(exps, bench::jobs());
    sim::writeBenchProfile(outcomes);
    std::size_t cell = 0;

    {
        // An 88-byte packet (40-byte message + headers) on a 4 Mb/s
        // token ring takes ~176 us of wire time; faster and slower
        // rings bracket it.
        TextTable t("Network-speed ablation (Arch II non-local, 4 "
                    "conversations, X = 1.71 ms)");
        t.header({"Wire time/packet (us)", "msgs/s",
                  "round trip (ms)"});
        for (double wire : wires) {
            const sim::Outcome &o = outcomes[cell++];
            t.row({TextTable::num(wire, 0),
                   TextTable::num(o.throughputPerSec, 1),
                   TextTable::num(o.meanRoundTripUs / 1000.0, 2)});
        }
        std::printf("%s  (the thesis models wire time as zero; the "
                    "4 Mb/s ring costs ~4%% here)\n\n",
                    t.render().c_str());
        hsipc::bench::record(t);
    }

    {
        // The same question on the explicit token-ring model: token
        // rotation + serialization at the ring rate.
        TextTable t("Token-ring ablation (Arch II non-local, 4 "
                    "conversations, X = 1.71 ms, 48-byte packets)");
        t.header({"Ring rate (Mb/s)", "msgs/s", "ring util",
                  "token wait (us)"});
        for (double mbps : rates) {
            const sim::Outcome &o = outcomes[cell++];
            t.row({TextTable::num(mbps, 2),
                   TextTable::num(o.throughputPerSec, 1),
                   TextTable::num(o.ringUtil, 3),
                   TextTable::num(o.ringTokenWaitUs, 1)});
        }
        std::printf("%s\n", t.render().c_str());
        hsipc::bench::record(t);
    }

    {
        TextTable t("Kernel-buffer-pool ablation (Arch II local, 6 "
                    "conversations, X = 0)");
        t.header({"Buffers", "msgs/s", "sender stalls"});
        for (int buffers : pools) {
            const sim::Outcome &o = outcomes[cell++];
            t.row({std::to_string(buffers),
                   TextTable::num(o.throughputPerSec, 1),
                   std::to_string(o.bufferStalls)});
        }
        std::printf("%s", t.render().c_str());
        hsipc::bench::record(t);
    }
    return hsipc::bench::finish();
}
