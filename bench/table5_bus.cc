/**
 * @file
 * Regenerates the chapter-5 hardware tables: the smart-bus signal
 * inventory (Table 5.1), the command encoding (Table 5.2) with
 * *measured* handshake edge counts from the edge-accurate bus
 * simulator (Figures 5.3-5.16), and the Appendix-A feasibility
 * numbers (micro-store size, §5.5's two-chip component budget).
 */

#include <cstdio>

#include "bus/memory.hh"
#include "bus/signals.hh"
#include "bus/smart_bus.hh"
#include "bus/timing.hh"
#include "common/bench_main.hh"
#include "common/table.hh"
#include "ucode/microcode.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::bus;
using namespace hsipc::ucode;

/** Measure the duration of one transaction on an idle bus. */
long
measureEdges(BusCommand cmd)
{
    SimMemory mem(4096);
    MicrocodedController ctrl(mem);
    SmartBus bus(mem);
    bus.setController(ctrl);
    const int mp = bus.addUnit("MP", 3);

    SmartBus::OpId op = -1;
    switch (cmd) {
      case BusCommand::SimpleRead:
        op = bus.postRead(mp, 100);
        break;
      case BusCommand::BlockTransfer:
      case BusCommand::BlockReadData:
        op = bus.postBlockRead(mp, 100, 40);
        break;
      case BusCommand::BlockWriteData:
        op = bus.postBlockWrite(mp, 100,
                                std::vector<std::uint8_t>(40, 1));
        break;
      case BusCommand::EnqueueControlBlock:
        op = bus.postEnqueue(mp, 2, 32);
        break;
      case BusCommand::DequeueControlBlock:
        QueueOps::enqueue(mem, 2, 32);
        op = bus.postDequeue(mp, 2, 32);
        break;
      case BusCommand::FirstControlBlock:
        QueueOps::enqueue(mem, 2, 32);
        op = bus.postFirst(mp, 2);
        break;
      case BusCommand::WriteTwoBytes:
        op = bus.postWrite16(mp, 100, 7);
        break;
      case BusCommand::WriteByte:
        op = bus.postWrite8(mp, 100, 7);
        break;
    }
    bus.run();
    return bus.result(op).endEdge - bus.result(op).startEdge;
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "table5_bus");
    {
        TextTable t("Table 5.1 - Smart Bus Signals");
        t.header({"Signal", "Lines", "Description"});
        for (const BusSignal &s : busSignalTable())
            t.row({s.name, std::to_string(s.lines), s.description});
        std::printf("%s  total %d lines\n\n", t.render().c_str(),
                    busTotalLines());
        hsipc::bench::record(t);
    }

    {
        TextTable t("Table 5.2 - Smart Bus Commands "
                    "(measured transaction edges)");
        t.header({"CM code", "Command", "edges", "us"});
        const BusCommand cmds[] = {
            BusCommand::SimpleRead, BusCommand::BlockTransfer,
            BusCommand::BlockReadData, BusCommand::BlockWriteData,
            BusCommand::EnqueueControlBlock,
            BusCommand::DequeueControlBlock,
            BusCommand::FirstControlBlock, BusCommand::WriteTwoBytes,
            BusCommand::WriteByte,
        };
        for (BusCommand c : cmds) {
            char code[8];
            std::snprintf(code, sizeof(code), "%04u",
                          // binary rendering of the 4-bit code
                          (static_cast<unsigned>(c) & 8 ? 1000u : 0u) +
                              (static_cast<unsigned>(c) & 4 ? 100u : 0u) +
                              (static_cast<unsigned>(c) & 2 ? 10u : 0u) +
                              (static_cast<unsigned>(c) & 1 ? 1u : 0u));
            long edges;
            const char *note = "";
            if (c == BusCommand::BlockTransfer) {
                edges = 4;
                note = " (request only)";
            } else {
                edges = measureEdges(c);
                if (c == BusCommand::BlockReadData ||
                    c == BusCommand::BlockWriteData)
                    note = " (40-byte block incl. request)";
            }
            t.row({code, busCommandName(c) + note,
                   std::to_string(edges),
                   TextTable::num(edges * edgeUs, 2)});
        }
        std::printf("%s\n", t.render().c_str());
        hsipc::bench::record(t);
    }

    {
        std::printf("== Appendix A feasibility (see §5.5) ==\n");
        std::printf("  micro-store: %zu micro-words x %d bits = %d "
                    "bits (claim: under 3000)\n",
                    microProgram().store.size(), microWordBits(),
                    microProgram().sizeBits());
        TextTable t("Table A.1 - Data Path Chip: Component Count "
                    "(reconstructed)");
        t.header({"Component", "Active components"});
        for (const ComponentCount &c : dataPathComponents())
            t.row({c.component, std::to_string(c.count)});
        t.row({"TOTAL (claim: ~6000)",
               std::to_string(dataPathComponentTotal())});
        std::printf("%s", t.render().c_str());
        hsipc::bench::record(t);
    }

    {
        std::printf("\n== Handshake timing diagrams "
                    "(Figs 5.4-5.16) ==\n\n");
        for (BusCommand c : {BusCommand::BlockTransfer,
                             BusCommand::BlockReadData,
                             BusCommand::BlockWriteData,
                             BusCommand::EnqueueControlBlock,
                             BusCommand::FirstControlBlock,
                             BusCommand::SimpleRead,
                             BusCommand::WriteTwoBytes}) {
            std::printf("%s\n", renderTimingDiagram(c, 2).c_str());
        }
    }
    return hsipc::bench::finish();
}
