/**
 * @file
 * The chapter-7 extension (Fig 7.1): shared-memory multiprocessor
 * nodes, where one message coprocessor serves a collection of hosts.
 *
 * The thesis proposes this as the natural scaling of its design and
 * argues the MP will eventually need a faster (VLSI) implementation.
 * We extend the local-conversation model with multiple host tokens
 * and scale the conversation count with the host count; the kernel
 * simulator (which already supports several hosts) cross-checks.
 * Watch the MP saturate: added hosts stop helping once the single MP
 * is the bottleneck, and a 2x-faster MP restores the scaling.
 */

#include <algorithm>
#include <cstdio>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "core/models/local_model.hh"
#include "core/models/solution.hh"
#include "sim/kernel/ipc_sim.hh"

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "fig7_multiprocessor");
    using namespace hsipc;
    using namespace hsipc::models;

    const double x = 1710.0; // offered load ~0.74 on architecture I

    TextTable t("Figure 7.1 extension - multiprocessor nodes, local "
                "conversations, X = 1.71 ms: messages/sec");
    t.header({"Hosts", "Conversations", "Model Arch II",
              "Model II + 2x MP", "Model Arch III", "Sim Arch II"});
    for (int hosts = 1; hosts <= 3; ++hosts) {
        // Enough conversations to feed every host (capped: the state
        // space of 6-conversation nets runs to minutes).
        const int n = std::min(2 * hosts, 4);

        const double m2 =
            solveLocalCustom(localParams(Arch::II), n, x, hosts)
                .throughputPerUs * 1e6;
        const double m2fast =
            solveLocalCustom(scaleMpSpeed(localParams(Arch::II), 2.0),
                             n, x, hosts)
                .throughputPerUs * 1e6;
        const double m3 =
            solveLocalCustom(localParams(Arch::III), n, x, hosts)
                .throughputPerUs * 1e6;

        sim::Experiment e;
        e.arch = Arch::II;
        e.local = true;
        e.conversations = n;
        e.computeUs = x;
        e.hostsPerNode = hosts;
        const double s2 = sim::runExperiment(e).throughputPerSec;

        t.row({std::to_string(hosts), std::to_string(n),
               TextTable::num(m2, 1), TextTable::num(m2fast, 1),
               TextTable::num(m3, 1), TextTable::num(s2, 1)});
    }
    std::printf("%s", t.render().c_str());
    hsipc::bench::record(t);
    return hsipc::bench::finish();
}
