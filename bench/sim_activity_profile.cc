/**
 * @file
 * The chapter-4 measurement exercise, rerun on the simulator: break a
 * round trip into per-activity processing times and compare with the
 * step tables that drove the models (Tables 6.9/6.11 "Best" column).
 * Agreement here confirms the simulator charges exactly the costs the
 * models assume — the premise of the Fig 6.15 validation.
 */

#include <cstdio>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "core/models/processing_times.hh"
#include "sim/kernel/ipc_sim.hh"
#include "sim/node/costs.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::models;

void
profile(Arch arch, bool local, const char *ref)
{
    sim::Experiment e;
    e.arch = arch;
    e.local = local;
    e.conversations = 1; // uncontended: activities equal their costs
    e.computeUs = 0;
    const sim::Outcome o = sim::runExperiment(e);

    const sim::IpcCosts costs = sim::ipcCosts(arch, local);
    auto expected = [&](const std::string &name) -> double {
        const sim::ActCost *c = nullptr;
        if (name == "sendSyscall") c = &costs.sendSyscall;
        else if (name == "processSend") c = &costs.processSend;
        else if (name == "recvSyscall") c = &costs.recvSyscall;
        else if (name == "processRecv") c = &costs.processRecv;
        else if (name == "match") c = &costs.match;
        else if (name == "restartServer") c = &costs.restartServer;
        else if (name == "replySyscall") c = &costs.reply;
        else if (name == "processReply") c = &costs.processReply;
        else if (name == "restartServer2") c = &costs.restartServer2;
        else if (name == "restartClient") c = &costs.restartClient;
        else if (name == "cleanup") c = &costs.cleanupClient;
        if (!c)
            return -1;
        return c->procUs + c->kb + c->tcb;
    };

    TextTable t(std::string("Simulated activity profile - ") +
                archName(arch) + (local ? " local" : " non-local") +
                " (1 conversation, X=0); reference " + ref);
    t.header({"Activity", "us/round trip (sim)", "step table (Best)"});
    for (const auto &[name, us] : o.activityUsPerRoundTrip) {
        if (name == "compute")
            continue;
        const double exp_us = expected(name);
        std::string label = "dmaOut/dmaIn (aggregated)";
        if (exp_us >= 0)
            label = TextTable::num(exp_us, 0);
        t.row({name, TextTable::num(us, 1),
               exp_us >= 0 ? TextTable::num(exp_us, 0) : "-"});
    }
    std::printf("%s  round trip %.0f us\n\n", t.render().c_str(),
                o.meanRoundTripUs);
    hsipc::bench::record(t);
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "sim_activity_profile");
    profile(Arch::II, true, "Table 6.9");
    profile(Arch::II, false, "Table 6.11");
    return hsipc::bench::finish();
}
