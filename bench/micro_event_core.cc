/**
 * @file
 * Deterministic event-core comparison of the two pending-event-set
 * policies (binary heap vs ladder queue) at high pending counts.
 *
 * Unlike the google-benchmark BM_EventQueueHighPending* timings in
 * micro_library.cc, every number here is *structural* — operation
 * ledgers, ladder telemetry, and a steady-state allocation count from
 * a global operator-new hook — so the table is bit-identical across
 * machines and gated exactly by tools/bench_compare.py against
 * bench/baselines/micro_event_core.json.
 *
 * The workload is the engine's steady-state shape: `fanout` pending
 * self-rescheduling events (initial stagger over a compact tick span,
 * then a fixed +100-tick cycle).  Per policy and fanout the table
 * reports pushes/pops, heap sift comparisons (zero for the ladder),
 * the ladder's structural counters (zero for the heap), and the heap
 * allocations observed across the measured half of the run — the
 * committed baseline pins the last column to zero, which is the
 * allocation-free steady state the policy tests also enforce.
 */

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>

#include "common/bench_main.hh"
#include "common/obs/engine_prof.hh"
#include "common/table.hh"
#include "sim/des/event_queue.hh"

namespace
{

std::atomic<std::uint64_t> g_allocs{0};

} // namespace

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

// Nothrow forms replaced too: libstdc++'s temporary buffers (e.g.
// stable_sort scratch) use nothrow new, and mixing the runtime's new
// with this file's free()-based delete trips ASan's alloc-dealloc
// matching.
void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n ? n : 1);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace
{

using namespace hsipc;
using namespace hsipc::sim;

struct SelfSched
{
    EventQueue *q;
    std::uint64_t *remaining;

    void
    operator()()
    {
        if (*remaining > 0) {
            --*remaining;
            q->scheduleAfter(100, SelfSched(*this));
        }
    }
};

struct CoreRow
{
    std::uint64_t events;
    std::uint64_t pushes;
    std::uint64_t pops;
    std::uint64_t comparisons;
    std::uint64_t topTransfers;
    std::uint64_t rungSpawns;
    std::uint64_t bottomSorts;
    std::uint64_t sortedEvents;
    std::uint64_t maxBucket;
    std::uint64_t steadyAllocs;
};

CoreRow
runCore(QueueKind kind, int fanout)
{
    // Pass 1 — allocation pin, profiler detached: the profiler's
    // wall-clock sketches may open a new log2 bucket on a scheduling
    // outlier, which is machine-dependent and would unpin the gated
    // zero.  The bare queue's steady state is deterministic.
    std::uint64_t steadyAllocs;
    {
        EventQueue q(kind, static_cast<std::size_t>(fanout) * 2);
        // Compact initial stagger: the whole population is live from
        // the start, so bucket high-water marks are discovered during
        // warmup instead of drifting through a long first sweep.
        std::uint64_t remaining =
            static_cast<std::uint64_t>(fanout) * 4;
        for (int i = 0; i < fanout; ++i)
            q.scheduleAfter(i % 512, SelfSched{&q, &remaining});
        while (remaining > 0)
            q.runOne();

        // Measured half: the committed baseline pins this to zero.
        remaining = static_cast<std::uint64_t>(fanout) * 4;
        const std::uint64_t a0 =
            g_allocs.load(std::memory_order_relaxed);
        while (remaining > 0)
            q.runOne();
        steadyAllocs =
            g_allocs.load(std::memory_order_relaxed) - a0;
        q.runUntil(std::numeric_limits<Tick>::max());
    }

    // Pass 2 — structural ledger, profiler attached: every counter
    // below is a function of the event sequence alone.
    obs::EngineProfiler prof;
    prof.beginRun();
    EventQueue q(kind, static_cast<std::size_t>(fanout) * 2);
    q.attachProfiler(&prof);
    std::uint64_t remaining = static_cast<std::uint64_t>(fanout) * 8;
    for (int i = 0; i < fanout; ++i)
        q.scheduleAfter(i % 512, SelfSched{&q, &remaining});
    while (remaining > 0)
        q.runOne();
    const std::uint64_t events = q.eventsRun();
    q.runUntil(std::numeric_limits<Tick>::max());
    prof.finishRun(q.size());
    const obs::EngineProfile &p = prof.profile();
    return {events,        p.pushes,     p.pops,
            p.comparisons, p.topTransfers, p.rungSpawns,
            p.bottomSorts, p.sortedEvents, p.maxBucket,
            steadyAllocs};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv, "micro_event_core");

    TextTable t("Event-core structural ledger: heap vs ladder "
                "(self-rescheduling steady state, 8x fanout events)");
    t.header({"policy", "pending", "events", "pushes", "pops",
              "heap cmps", "topXfer", "spawns", "sorts",
              "sorted ev", "max bucket", "steady allocs"});
    for (QueueKind kind : {QueueKind::Heap, QueueKind::Ladder}) {
        for (int fanout : {4096, 16384, 65536}) {
            const CoreRow r = runCore(kind, fanout);
            t.row({kind == QueueKind::Heap ? "heap" : "ladder",
                   std::to_string(fanout),
                   std::to_string(r.events),
                   std::to_string(r.pushes),
                   std::to_string(r.pops),
                   std::to_string(r.comparisons),
                   std::to_string(r.topTransfers),
                   std::to_string(r.rungSpawns),
                   std::to_string(r.bottomSorts),
                   std::to_string(r.sortedEvents),
                   std::to_string(r.maxBucket),
                   std::to_string(r.steadyAllocs)});
        }
    }
    bench::emit(t);
    return bench::finish();
}
