/**
 * @file
 * The observability layer exercised end to end: run a lossy
 * Architecture I workload with the tracer and metrics registry
 * attached, then derive the per-resource utilization and the
 * per-activity time breakdown from the recorded trace itself — the
 * simulator's own Table 3-style profile (§3.3), computed from its
 * execution rather than from the synthetic profiling harness — and
 * cross-check both against the Outcome the simulator measured
 * directly.  The category table carries the thesis' measured 925
 * percentages (Table 3.3) side by side, in the same style as
 * bench/table3_profiling.cc.
 */

#include <cstdio>
#include <map>
#include <string>

#include "common/bench_main.hh"
#include "common/metrics/metrics.hh"
#include "common/table.hh"
#include "common/trace/tracer.hh"
#include "sim/kernel/ipc_sim.hh"

namespace
{

using namespace hsipc;

/**
 * Fold a simulated kernel activity into the §3.3 profiling categories
 * the 925 measurements used (Table 3.3).
 */
const char *
category(const std::string &activity)
{
    if (activity == "compute")
        return nullptr; // application time, not kernel time
    if (activity.rfind("restart", 0) == 0)
        return "Short-Term Scheduling";
    if (activity == "dmaIn" || activity == "dmaOut")
        return "Copying";
    if (activity == "sendSyscall" || activity == "recvSyscall" ||
        activity == "replySyscall")
        return "Entering/Exiting Kernel";
    // match, cleanup, and the reliability-stack proto* activities are
    // the checking, queueing, and protocol work of the kernel proper.
    return "Checking & Queueing & Protocol";
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "sim_trace_breakdown");

    sim::Experiment e;
    e.arch = models::Arch::I;
    e.local = false;
    e.conversations = 4;
    e.computeUs = 2000;
    e.lossRate = 0.03;
    e.corruptRate = 0.01;
    e.duplicateRate = 0.01;
    e.seed = 7;

    trace::Tracer tr;
    tr.setEnabled(true);
    metrics::Registry reg;
    const sim::Outcome o = sim::runExperiment(e, &tr, &reg);

    const Tick warm = usToTicks(e.warmupUs);
    const Tick end = warm + usToTicks(e.measureUs);
    const double window = static_cast<double>(end - warm);
    const double rts = static_cast<double>(o.roundTrips);

    // Per-activity breakdown, derived from the trace's spans alone.
    const std::map<std::string, Tick> byName = tr.busyByName(warm, end);
    std::map<std::string, double> catUs;
    double kernelUs = 0;
    {
        TextTable t("Per-activity time breakdown, trace-derived vs "
                    "Outcome (Arch I non-local, lossy)");
        t.header({"Activity", "trace us/rt", "Outcome us/rt"});
        for (const auto &[name, us] : o.activityUsPerRoundTrip) {
            Tick traced = 0;
            auto it = byName.find(name);
            if (it != byName.end())
                traced = it->second;
            const double trace_us = ticksToUs(traced) / rts;
            t.row({name, TextTable::num(trace_us, 1),
                   TextTable::num(us, 1)});
            if (const char *cat = category(name)) {
                catUs[cat] += trace_us;
                kernelUs += trace_us;
            }
        }
        std::printf("%s  (bus holds appear in the trace as 'access' "
                    "spans, not as activities)\n\n",
                    t.render().c_str());
        hsipc::bench::record(t);
    }

    // Fold into the §3.3 categories with the 925 percentages (Table
    // 3.3) for comparison.  The proportions differ where they should:
    // the faulty medium's protocol work inflates the checking share
    // relative to a healthy kernel.
    {
        const std::map<std::string, double> paper = {
            {"Short-Term Scheduling", 35},
            {"Copying", 15},
            {"Entering/Exiting Kernel", 10},
            {"Checking & Queueing & Protocol", 40}};
        TextTable t("Kernel time by §3.3 category (share of kernel "
                    "processing per round trip)");
        t.header({"Category", "us/rt", "% kernel", "925 paper %"});
        for (const auto &[cat, us] : catUs) {
            auto it = paper.find(cat);
            t.row({cat, TextTable::num(us, 1),
                   TextTable::num(100.0 * us / kernelUs, 1),
                   it != paper.end() ? TextTable::num(it->second, 1)
                                     : "-"});
        }
        std::printf("%s  (arch I folds restart/scheduling work into the syscall\n"
                    "   activities, so the 925's separate 35%% scheduling "
                    "share lands\n   in Entering/Exiting Kernel here)\n\n",
                    t.render().c_str());
        hsipc::bench::record(t);
    }

    // Per-resource utilization: the trace's spans folded per track
    // against the Outcome's measurement-window accounting.  Both
    // exclude warmup; tracks that carry no busy spans (service
    // queues, the medium, the protocol channels) are not resources.
    {
        const std::map<std::string, Tick> byTrack =
            tr.busyByTrack(warm, end);
        TextTable t("Per-resource utilization over the measurement "
                    "window, trace-derived vs Outcome");
        t.header({"Resource", "trace util", "Outcome util"});
        for (const auto &[name, util] : o.resourceUtilization) {
            Tick traced = 0;
            auto it = byTrack.find(name);
            if (it != byTrack.end())
                traced = it->second;
            t.row({name,
                   TextTable::num(static_cast<double>(traced) / window,
                                  3),
                   TextTable::num(util, 3)});
        }
        std::printf("%s\n", t.render().c_str());
        hsipc::bench::record(t);
    }

    // The registry's headline numbers for the same run.
    {
        TextTable t("Metrics registry highlights");
        t.header({"Metric", "Value"});
        for (const char *c :
             {"ipc.roundTrips", "net.retransmissions",
              "net.timeoutsFired", "net.faultDrops",
              "net.duplicatesDropped", "net.corruptDiscarded",
              "des.eventsRun"})
            t.row({c, std::to_string(reg.counter(c).value())});
        metrics::Histogram &h = reg.histogram("ipc.roundTripUs");
        t.row({"ipc.roundTripUs mean", TextTable::num(h.mean(), 1)});
        t.row({"ipc.roundTripUs p95 (bucket ub)",
               TextTable::num(h.quantileUpperBound(0.95), 0)});
        std::printf("%s  trace: %zu events on %zu tracks\n",
                    t.render().c_str(), tr.events().size(),
                    tr.trackNames().size());
        hsipc::bench::record(t);
    }

    hsipc::bench::note("roundTrips", rts);
    hsipc::bench::note("kernelUsPerRt", kernelUs);
    hsipc::bench::note("traceEvents",
                       static_cast<double>(tr.events().size()));
    return hsipc::bench::finish();
}
