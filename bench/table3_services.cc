/**
 * @file
 * Regenerates Table 3.6 (Unix system-service times) and Table 3.7
 * (file-system read/write times vs block size) from the service
 * instruction budgets and the file-server cost model.
 */

#include <cstdio>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "prof/kernels.hh"

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "table3_services");
    using namespace hsipc;
    using namespace hsipc::prof;

    {
        // Paper values for comparison.
        const double paper[] = {4.35, 0.36, 18.71, 14.28, 3.453, 0.2};
        TextTable t("Table 3.6 - Unix Servers");
        t.header({"System Service", "Time (ms)", "paper (ms)"});
        std::size_t i = 0;
        for (const ServiceSpec &svc : unixServices()) {
            t.row({svc.service, TextTable::num(serviceTimeMs(svc), 3),
                   TextTable::num(paper[i++], 3)});
        }
        std::printf("%s\n", t.render().c_str());
        hsipc::bench::record(t);
    }

    {
        const double paper_read[] = {1.0092, 1.0867, 1.2329, 1.5999,
                                     1.7647, 2.739, 3.2442};
        const double paper_write[] = {1.5464, 1.7633, 2.0982, 2.7095,
                                      3.8082, 5.7908, 6.1082};
        const FileServerModel rd = unixReadModel();
        const FileServerModel wr = unixWriteModel();
        TextTable t("Table 3.7 - Unix Read/Write");
        t.header({"BlockSize", "Read (ms)", "paper", "Write (ms)",
                  "paper"});
        std::size_t i = 0;
        for (int bytes : unixRwBlockSizes()) {
            t.row({std::to_string(bytes),
                   TextTable::num(rd.timeMs(bytes), 3),
                   TextTable::num(paper_read[i], 3),
                   TextTable::num(wr.timeMs(bytes), 3),
                   TextTable::num(paper_write[i], 3)});
            ++i;
        }
        std::printf("%s", t.render().c_str());
        hsipc::bench::record(t);
        std::printf("  model: read %.0f us + %.0f us/block + %.2f "
                    "us/byte; write %.0f + %.0f + %.2f\n",
                    rd.fixedUs, rd.perBlockUs, rd.perByteUs, wr.fixedUs,
                    wr.perBlockUs, wr.perByteUs);
    }
    return hsipc::bench::finish();
}
