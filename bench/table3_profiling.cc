/**
 * @file
 * Regenerates Tables 3.1-3.5: the profiling breakdowns of Charlotte,
 * Jasmin, 925, and Unix (local and non-local null-RPC round trips).
 *
 * Each synthetic kernel executes the §3.3 producer/consumer loop
 * through the instrumented procedure profiler; rows are aggregated by
 * kernel activity.  "paper %" columns carry the thesis' measured
 * percentages for comparison.
 */

#include <cstdio>
#include <map>
#include <string>

#include "common/bench_main.hh"
#include "common/table.hh"
#include "prof/kernels.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::prof;

struct PaperRow
{
    const char *activity;
    double percent;
};

void
printProfile(const char *title, const KernelSpec &spec,
             const std::map<std::string, double> &paper)
{
    const ProfileResult res = runKernelProfile(spec);

    TextTable t(title);
    t.header({"Activity", "Time (ms)", "% round trip", "paper %"});
    for (const ActivityRow &row : res.rows) {
        double paper_pct = -1;
        for (const auto &[key, pct] : paper) {
            if (row.activity.find(key) != std::string::npos)
                paper_pct = pct;
        }
        t.row({row.activity, TextTable::num(row.timeMs, 3),
               TextTable::num(row.percent, 1),
               paper_pct >= 0 ? TextTable::num(paper_pct, 1) : "-"});
    }
    std::printf("%s", t.render().c_str());
    hsipc::bench::record(t);
    std::printf("  machine %s (%.1f MIPS), %d-byte message\n"
                "  round trip %.3f ms (copy %.3f ms)\n\n",
                spec.machine.name.c_str(), spec.machine.mips,
                spec.messageBytes, res.roundTripMs, res.copyTimeMs);
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "table3_profiling");
    std::printf("Chapter 3 profiling studies "
                "(synthetic kernels; see DESIGN.md)\n\n");

    printProfile("Table 3.1 - Charlotte Profiling", charlotteSpec(),
                 {{"Kernel-Process", 10},
                  {"Copy", 3},
                  {"Entering", 14},
                  {"Protocol", 50},
                  {"Link Translation", 23}});

    printProfile("Table 3.2 - Jasmin Profiling", jasminSpec(),
                 {{"Short-Term", 40},
                  {"Copy", 15},
                  {"Buffer", 10},
                  {"Path", 20},
                  {"Miscellaneous", 15}});

    printProfile("Table 3.3 - 925 Profiling", spec925(),
                 {{"Short-Term", 35},
                  {"Copy", 15},
                  {"Entering", 10},
                  {"Checking", 40}});

    printProfile("Table 3.4 - Unix Profiling (Local Message)",
                 unixLocalSpec(),
                 {{"Validity", 53.4},
                  {"Copy", 19.3},
                  {"Short-Term", 17.1},
                  {"Buffer", 10.2}});

    printProfile("Table 3.5 - Unix Profiling (Non-local Message)",
                 unixNonlocalSpec(),
                 {{"Socket", 15},
                  {"Copy", 7},
                  {"Checksum", 9},
                  {"Short-Term", 6},
                  {"Buffer", 4},
                  {"TCP", 19},
                  {"IP", 24},
                  {"Interrupt", 16}});

    std::printf("Fixed overheads (paper: Charlotte 19.4 ms, Jasmin "
                "0.612 ms, 925 4.76 ms):\n");
    std::printf("  Charlotte %.2f ms, Jasmin %.3f ms, 925 %.2f ms\n",
                fixedOverheadUs(charlotteSpec()) / 1000.0,
                fixedOverheadUs(jasminSpec()) / 1000.0,
                fixedOverheadUs(spec925()) / 1000.0);
    return hsipc::bench::finish();
}
