/**
 * @file
 * Regenerates Figure 6.17 (a) and (b): message throughput under
 * maximum communication load (zero server computation) for
 * architectures I, II and III (IV added for completeness), local and
 * non-local conversations, 1-4 simultaneous conversations.
 *
 * Expected shape (§6.9.1): architecture I local is flat (~200/s);
 * architecture II loses ~10% at one conversation but grows, saturating
 * at the MP bandwidth; architecture III is significantly better than
 * both; saturation is less pronounced for non-local conversations
 * because the processing load spreads over two nodes.
 *
 * Every cell of the grid is an independent model solve, so the sweep
 * fans out over `--jobs` workers; rendering consumes the results in
 * input order, keeping the output byte-identical at any jobs level.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common/bench_main.hh"
#include "common/parallel/parallel.hh"
#include "common/table.hh"
#include "core/models/solution.hh"

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "fig6_17_max_load");
    using namespace hsipc;
    using namespace hsipc::models;

    constexpr Arch archs[] = {Arch::I, Arch::II, Arch::III, Arch::IV};

    // One task per grid cell, in rendering order: (local, n, arch).
    std::vector<std::function<double()>> tasks;
    for (bool local : {true, false}) {
        for (int n = 1; n <= 4; ++n) {
            for (Arch a : archs) {
                tasks.push_back([local, n, a]() {
                    return local
                        ? solveLocal(a, n, 0.0).throughputPerUs
                        : solveNonlocal(a, n, 0.0).throughputPerUs;
                });
            }
        }
    }
    const std::vector<double> thr =
        parallel::runAll<double>(bench::jobs(), tasks);

    std::size_t cell = 0;
    for (bool local : {true, false}) {
        TextTable t(local
                        ? "Figure 6.17(a) - Maximum Communication "
                          "Load (Local): messages/sec"
                        : "Figure 6.17(b) - Maximum Communication "
                          "Load (Non-local): messages/sec");
        t.header({"Conversations", "Arch I", "Arch II", "Arch III",
                  "Arch IV"});
        for (int n = 1; n <= 4; ++n) {
            std::vector<std::string> row{std::to_string(n)};
            for (Arch a : archs) {
                (void)a;
                row.push_back(TextTable::num(thr[cell++] * 1e6, 1));
            }
            t.row(std::move(row));
        }
        std::printf("%s\n", t.render().c_str());
        hsipc::bench::record(t);
    }
    return hsipc::bench::finish();
}
