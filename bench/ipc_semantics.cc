/**
 * @file
 * Regenerates the §3.2 IPC-semantics comparison across the three
 * implemented kernels (Charlotte links, Jasmin paths, 925 services),
 * and quantifies the §3.4 observation that Charlotte's equal-rights
 * link protocol demands the most kernel checking per round trip by
 * running the same null-RPC loop on each kernel and counting validity
 * checks.
 */

#include <cstdio>

#include "charlotte/links.hh"
#include "common/bench_main.hh"
#include "common/table.hh"
#include "jasmin/paths.hh"
#include "k925/kernel.hh"
#include "unixsock/sockets.hh"

namespace
{

using namespace hsipc;

long
charlotteChecksPerRoundTrip()
{
    using namespace hsipc::charlotte;
    LinkKernel k;
    const ProcId c = k.createProcess("client");
    const ProcId s = k.createProcess("server");
    auto [ce, se] = k.makeLink(c, s);
    const long before = k.checksPerformed();
    const int n = 100;
    for (int i = 0; i < n; ++i) {
        k.postReceive(s, se);
        k.postSend(c, ce, {1, 2, 3});
        k.postReceive(c, ce);
        k.postSend(s, se, {4, 5, 6});
    }
    return (k.checksPerformed() - before) / n;
}

long
jasminChecksPerRoundTrip()
{
    using namespace hsipc::jasmin;
    PathKernel k;
    const ProcId s = k.createProcess("server");
    const ProcId c = k.createProcess("client");
    const PathId req = k.createPath(s);
    k.giveSendEnd(s, req, c);
    const PathId rep = k.createPath(c);
    k.giveSendEnd(c, rep, s);
    const long before = k.checksPerformed();
    const int n = 100;
    Message m{};
    for (int i = 0; i < n; ++i) {
        k.sendmsg(c, req, m);
        k.rcvmsg(s, {req}, m);
        k.sendmsg(s, rep, m);
        k.rcvmsg(c, {rep}, m);
    }
    return (k.checksPerformed() - before) / n;
}

} // namespace

int
main(int argc, char **argv)
{
    hsipc::bench::init(argc, argv, "ipc_semantics");
    {
        TextTable t("The §3.2 IPC design space (as implemented)");
        t.header({"Property", "Charlotte (links)", "Jasmin (paths)",
                  "925 (services)", "Unix (sockets)"});
        t.row({"Connection", "two-way link, equal rights",
               "one-way path, gift send end",
               "service = queueing point",
               "two-way byte stream"});
        t.row({"Message size", "arbitrary", "fixed 32 B",
               "fixed 40 B (+ memory ref)",
               "arbitrary (no boundaries)"});
        t.row({"Kernel buffering", "none (rendezvous)",
               "yes, fixed-size pool", "yes, fixed-size pool",
               "yes, bounded byte buffer"});
        t.row({"Send", "no-wait, async completion",
               "no-wait datagram",
               "no-wait or remote invocation",
               "blocks on full buffer (or EWOULDBLOCK)"});
        t.row({"Receive", "post + poll/wait; one or all links",
               "blocking; group of paths",
               "blocking; all offered services",
               "blocking or non-blocking read"});
        t.row({"Selective receipt", "one link or all", "path group",
               "none", "none"});
        t.row({"Polling", "completion poll", "none", "inquire",
               "select()"});
        t.row({"Bulk data", "any-size message", "iomove",
               "memory move via enclosed ref", "the stream itself"});
        t.row({"Unusual rights", "move/cancel/destroy from either end",
               "one-time gift; one-shot reply paths",
               "rights revoked at reply",
               "close -> EOF / EPIPE"});
        std::printf("%s\n", t.render().c_str());
        hsipc::bench::record(t);
    }

    {
        TextTable t("Kernel validity checks per null-RPC round trip "
                    "(cf. Tables 3.1-3.3's protocol overheads)");
        t.header({"Kernel", "checks/round trip"});
        t.row({"Charlotte links",
               std::to_string(charlotteChecksPerRoundTrip())});
        t.row({"Jasmin paths",
               std::to_string(jasminChecksPerRoundTrip())});
        std::printf("%s", t.render().c_str());
        hsipc::bench::record(t);
        std::printf("  Charlotte's two-way, equal-rights protocol "
                    "does the most checking —\n  the thesis measured "
                    "50%% of its 20 ms round trip in link protocol "
                    "processing.\n");
    }
    return hsipc::bench::finish();
}
